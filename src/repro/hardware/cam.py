"""NVM content-addressable memory for string matching (Fig. 3).

A CAM row stores an n-bit reference string in programmable-resistor
pairs; a query drives all rows in parallel, and a row's matchline stays
high only when every bit matches. This is the search primitive of the
in-memory seeding unit (and, in PARC, of the DP kernels).

The functional model reproduces exact-match semantics bit-for-bit; the
cost model follows NVSim-CAM-class numbers: a search costs one
precharge + compare across all active rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CamConfig:
    """Geometry and per-search costs of one CAM array."""

    rows: int = 832
    width_bits: int = 128
    search_latency_ns: float = 2.0
    #: Energy of one parallel search over the full array.
    search_energy_pj: float = 50.0
    write_energy_pj_per_bit: float = 2.0
    area_mm2: float = 0.004

    def __post_init__(self) -> None:
        if self.rows < 1 or self.width_bits < 1 or self.width_bits > 256:
            raise ValueError("invalid CAM geometry")
        if min(self.search_latency_ns, self.search_energy_pj, self.area_mm2) <= 0:
            raise ValueError("costs must be positive")


class CamArray:
    """A fixed-width exact-match CAM."""

    def __init__(self, config: CamConfig | None = None):
        self._config = config or CamConfig()
        self._keys = np.zeros(self._config.rows, dtype=np.uint64)
        self._valid = np.zeros(self._config.rows, dtype=bool)
        self._writes = 0
        self._searches = 0

    @property
    def config(self) -> CamConfig:
        return self._config

    @property
    def occupancy(self) -> int:
        """Number of valid (programmed) rows."""
        return int(self._valid.sum())

    def _check_key(self, key: int) -> np.uint64:
        if key < 0 or key >= (1 << min(self._config.width_bits, 64)):
            raise ValueError(f"key {key} does not fit in {self._config.width_bits} bits")
        return np.uint64(key)

    def write(self, row: int, key: int) -> None:
        """Program one row's resistor pairs with a key."""
        if not 0 <= row < self._config.rows:
            raise ValueError(f"row {row} out of range")
        self._keys[row] = self._check_key(key)
        self._valid[row] = True
        self._writes += 1

    def program_all(self, keys) -> None:
        """Bulk-program keys starting at row 0."""
        keys = list(keys)
        if len(keys) > self._config.rows:
            raise ValueError(f"{len(keys)} keys exceed {self._config.rows} rows")
        for row, key in enumerate(keys):
            self.write(row, key)

    def search(self, key: int) -> np.ndarray:
        """Parallel exact-match search: indices of matching rows."""
        query = self._check_key(key)
        self._searches += 1
        hits = self._valid & (self._keys == query)
        return np.nonzero(hits)[0]

    def search_energy_pj(self) -> float:
        """Energy of one search (all rows compared in parallel)."""
        return self._config.search_energy_pj

    def total_energy_pj(self) -> float:
        """Accumulated write + search energy since construction."""
        write_energy = self._writes * self._config.width_bits * self._config.write_energy_pj_per_bit
        return write_energy + self._searches * self._config.search_energy_pj

    @property
    def search_count(self) -> int:
        return self._searches
