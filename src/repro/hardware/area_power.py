"""Table 2 reconstruction: GenPIP's area and power breakdown (32 nm).

The paper's Table 2:

================================  ==========  ===========
Component                          Power (W)   Area (mm^2)
================================  ==========  ===========
PIM Basecaller (168 tiles)           27.1        49.24
PIM-CQS (SOT-MRAM, 16x1024)           0.307       0.0256
**Basecalling module total**         27.4        49.2
Seeding (4096 units)                 28.2        76.68
RMC (4 MB eDRAM)                      1.346       5.472
DP (1024 units)                      85          10.9
**Read-mapping module total**       114.5        93.1
GenPIP controller (12 MB eDRAM,
AQS calc, ER-QSR/CMR controllers)     5.3        21.5
**GenPIP total**                    147.2       163.8
================================  ==========  ===========

The budget is assembled from the component models where they exist
(Helix, PIM-CQS, seeding, DP, eDRAM densities) so that the totals are
*derived*, and tests check they land on the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.dp_unit import DpUnitConfig
from repro.hardware.edram import EDRAM_AREA_MM2_PER_MB, EDRAM_POWER_W_PER_MB
from repro.hardware.helix import HelixModel
from repro.hardware.pim_cqs import PimCqsUnit
from repro.hardware.seeding_unit import SeedingUnitConfig


@dataclass(frozen=True)
class ComponentBudget:
    """One Table 2 row."""

    name: str
    module: str
    specification: str
    power_w: float
    area_mm2: float


@dataclass(frozen=True)
class GenPIPBudget:
    """The assembled budget with module and chip totals."""

    components: tuple[ComponentBudget, ...]

    def module_total(self, module: str) -> tuple[float, float]:
        """(power W, area mm^2) of one module."""
        rows = [c for c in self.components if c.module == module]
        if not rows:
            raise KeyError(f"unknown module {module!r}")
        return sum(c.power_w for c in rows), sum(c.area_mm2 for c in rows)

    @property
    def total_power_w(self) -> float:
        return sum(c.power_w for c in self.components)

    @property
    def total_area_mm2(self) -> float:
        return sum(c.area_mm2 for c in self.components)

    def rows(self) -> list[tuple[str, str, float, float]]:
        """(component, module, power, area) rows in Table 2 order."""
        return [(c.name, c.module, c.power_w, c.area_mm2) for c in self.components]


def genpip_table2_budget() -> GenPIPBudget:
    """Assemble the Table 2 budget from the component models."""
    seeding = SeedingUnitConfig()
    dp = DpUnitConfig()
    controller_edram_mb = 12.0
    controller_logic_w = 5.3 - controller_edram_mb * EDRAM_POWER_W_PER_MB
    controller_logic_mm2 = 21.5 - controller_edram_mb * EDRAM_AREA_MM2_PER_MB
    rmc_edram_mb = 4.0
    components = (
        ComponentBudget(
            name="PIM Basecaller",
            module="basecalling",
            specification="168 tiles + 4 MB eDRAM global buffer",
            power_w=HelixModel.POWER_W,
            area_mm2=HelixModel.AREA_MM2,
        ),
        ComponentBudget(
            name="PIM-CQS",
            module="basecalling",
            specification="SOT-MRAM PIM array 16x1024",
            power_w=PimCqsUnit.POWER_W,
            area_mm2=PimCqsUnit.AREA_MM2,
        ),
        ComponentBudget(
            name="Seeding",
            module="read-mapping",
            specification="4096 units; 832x128 CAMs, 8x16 KB RAMs, 4 KB eDRAM each",
            power_w=seeding.total_power_w,
            area_mm2=seeding.total_area_mm2,
        ),
        ComponentBudget(
            name="RMC",
            module="read-mapping",
            specification=f"{rmc_edram_mb:.0f} MB eDRAM read-mapping controller",
            power_w=rmc_edram_mb * EDRAM_POWER_W_PER_MB,
            area_mm2=rmc_edram_mb * EDRAM_AREA_MM2_PER_MB,
        ),
        ComponentBudget(
            name="DP",
            module="read-mapping",
            specification=f"{dp.n_units} DP units (chaining + alignment)",
            power_w=dp.total_power_w,
            area_mm2=dp.total_area_mm2,
        ),
        ComponentBudget(
            name="GenPIP controller",
            module="controller",
            specification="12 MB eDRAM + AQS calculator + ER-QSR/ER-CMR controllers",
            power_w=controller_edram_mb * EDRAM_POWER_W_PER_MB + controller_logic_w,
            area_mm2=controller_edram_mb * EDRAM_AREA_MM2_PER_MB + controller_logic_mm2,
        ),
    )
    return GenPIPBudget(components=components)
