"""Trace and metrics exporters: Chrome ``trace_event``, JSONL, Prometheus.

All exporters work on plain data -- decoded
:class:`~repro.obs.trace.ReadTrace` sequences and registry snapshot
dicts -- so they can run in the parent after a pooled run shipped its
spans home, or offline over a saved span log.

* :func:`chrome_trace_document` emits the Chrome ``trace_event`` JSON
  object format (complete ``"X"`` events), loadable by Perfetto /
  ``chrome://tracing``. Timestamps are microseconds, normalised per
  process to that process's earliest span and sorted so ``ts`` is
  monotone per ``tid``.
* :func:`span_records` / :func:`write_span_jsonl` emit one JSON object
  per span (trace label, kind, pid, name, parent index, start/duration)
  in dataset order -- the grep/pandas-friendly flat log.
* :func:`prometheus_text` renders a registry snapshot in the Prometheus
  text exposition format (``HELP``/``TYPE`` comments, labelled counter
  samples, quantile samples for histograms).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator, Mapping
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import ReadTrace


def chrome_trace_events(traces: Iterable["ReadTrace"]) -> list[dict]:
    """Flatten traces into Chrome ``trace_event`` complete events.

    Each span becomes one ``"X"`` event; ``pid`` and ``tid`` carry the
    emitting process id (clock domains are per-process, so events are
    grouped and time-normalised per pid and sorted to keep ``ts``
    monotone within each ``tid``).
    """
    traces = list(traces)
    t0_by_pid: dict[int, float] = {}
    for trace in traces:
        for span in trace.spans:
            start = span[2]
            if trace.pid not in t0_by_pid or start < t0_by_pid[trace.pid]:
                t0_by_pid[trace.pid] = start
    events = []
    for trace in traces:
        base = t0_by_pid[trace.pid] if trace.spans else 0.0
        for span in trace.spans:
            name, _parent, start, end = span
            events.append(
                {
                    "name": name,
                    "cat": trace.kind,
                    "ph": "X",
                    "ts": round((start - base) * 1e6, 3),
                    "dur": round(max(end - start, 0.0) * 1e6, 3),
                    "pid": trace.pid,
                    "tid": trace.pid,
                    "args": {"trace": trace.label},
                }
            )
    # Stable sort: slice order already nests children after parents at
    # equal timestamps, so sorting by (pid, ts) keeps ts monotone per
    # tid without reordering a parent behind its children.
    events.sort(key=lambda event: (event["pid"], event["ts"]))
    return events


def chrome_trace_document(traces: Iterable["ReadTrace"]) -> dict:
    """The full JSON-object trace document Perfetto loads directly."""
    return {"traceEvents": chrome_trace_events(traces), "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, traces: Iterable["ReadTrace"]) -> None:
    Path(path).write_text(json.dumps(chrome_trace_document(traces)) + "\n")


def span_records(traces: Iterable["ReadTrace"]) -> Iterator[dict]:
    """One flat JSON-safe record per span, in trace order."""
    for trace in traces:
        for index, span in enumerate(trace.spans):
            name, parent, start, end = span
            yield {
                "trace": trace.label,
                "kind": trace.kind,
                "pid": trace.pid,
                "span": index,
                "name": name,
                "parent": parent,
                "t0_s": round(start, 9),
                "dur_ms": round(max(end - start, 0.0) * 1e3, 6),
            }


def write_span_jsonl(path: str | Path, traces: Iterable["ReadTrace"]) -> None:
    """Write the flat span log, one compact JSON object per line."""
    with open(path, "w") as handle:
        for record in span_records(traces):
            handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(snapshot: Mapping[str, Mapping]) -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Counters emit one labelled ``_total`` sample per key, gauges one
    bare sample, histograms quantile samples (the p50/p95/p99 the
    serving layer promises) plus a ``_count``.
    """
    lines: list[str] = []
    for name, payload in snapshot.items():
        kind = payload.get("kind")
        help_text = payload.get("help", "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        if kind == "counter":
            lines.append(f"# TYPE {name} counter")
            label = payload.get("label", "key")
            values = payload.get("values", {})
            if not values:
                lines.append(f"{name}_total 0")
            for key in sorted(values):
                lines.append(f'{name}_total{{{label}="{key}"}} {_format_value(values[key])}')
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(payload.get('value', 0))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {name} summary")
            count = sum(payload.get("counts", []))
            for quantile, key in (("0.5", "p50_ms"), ("0.95", "p95_ms"), ("0.99", "p99_ms")):
                ms = payload.get(key)
                seconds = round(ms / 1e3, 9) if ms is not None else 0.0
                lines.append(f'{name}{{quantile="{quantile}"}} {_format_value(seconds)}')
            lines.append(f"{name}_count {count}")
    return "\n".join(lines) + "\n"
