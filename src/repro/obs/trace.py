"""Per-read stage span tracing with a process-local tracer.

The tracer follows the runtime's process-local ledger idiom
(:mod:`repro.perf.copies`, :mod:`repro.kernels.mapping_ops`): each
process owns at most one :class:`Tracer`, instrumented code looks it up
through :func:`active_tracer`, and pooled workers ship their completed
traces home as compact tuples on
:class:`~repro.runtime.merge.ShardResult`. When tracing is disabled
(the default) :func:`active_tracer` returns the shared
:class:`NullTracer`, whose every operation is a constant no-op -- the
instrumented hot paths pay one global read and one no-op context
manager per span.

Structure model
---------------
A **trace** is the span tree of one logical item: a read
(``kind="read"``), one worker-loop batch (``kind="unit"``), or one
serving dispatch (``kind="dispatch"``). Spans within a trace form a
tree via parent indices; the root span carries the trace kind's name.
Traces nest dynamically (each read trace opens while its batch trace is
active) but are *emitted* flat, so a run's trace is simply the
dataset-ordered sequence of read traces with unit/dispatch traces
interleaved.

Determinism: span *structure* (names, nesting, counts) depends only on
the control flow of the traced code, never on the clock -- a serial and
a pooled run over the same dataset produce identical per-read span
trees. Timings come from the injected ``clock`` (``time.perf_counter``
by default), which tests replace with a deterministic counter.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass

#: Span tuple layout shipped across process boundaries:
#: ``(name, parent_index, t_start, t_end)`` with ``parent_index == -1``
#: for the root span and clock values in the emitting process's domain.
SpanTuple = tuple[str, int, float, float]

#: Trace kinds and the root-span name each one opens with.
TRACE_KINDS = {"read": "read", "unit": "batch", "dispatch": "dispatch"}


@dataclass(frozen=True)
class ReadTrace:
    """One completed span tree (a read, a worker batch, or a dispatch).

    ``spans`` is the flat tuple-encoded tree: entry ``i`` is
    ``(name, parent, t0, t1)`` where ``parent`` indexes an earlier
    entry (``-1`` for the root). Clock values are only comparable
    within one ``pid``.
    """

    kind: str
    label: str
    pid: int
    spans: tuple[SpanTuple, ...]

    @property
    def n_spans(self) -> int:
        return len(self.spans)

    def names(self) -> tuple[str, ...]:
        """Span names in open order (root first)."""
        return tuple(span[0] for span in self.spans)

    def structure(self) -> tuple[tuple[str, int], ...]:
        """The clock-free shape of the tree: ``(name, parent)`` pairs.

        Two traces of the same read from different runs (serial vs
        pooled, different workers) compare equal on ``structure()``.
        """
        return tuple((span[0], span[1]) for span in self.spans)

    def count(self, name: str) -> int:
        """Number of spans carrying ``name``."""
        return sum(1 for span in self.spans if span[0] == name)

    def to_tuple(self) -> tuple:
        """Compact wire form for ShardResult transport."""
        return (self.kind, self.label, self.pid, self.spans)

    @classmethod
    def from_tuple(cls, payload: tuple) -> "ReadTrace":
        kind, label, pid, spans = payload
        return cls(kind=kind, label=label, pid=int(pid), spans=tuple(map(tuple, spans)))


class _NullContext:
    """Shared reusable no-op context manager (tracing disabled)."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """The disabled tracer: every operation is a constant no-op."""

    __slots__ = ()
    enabled = False

    def read(self, label) -> _NullContext:
        return _NULL_CONTEXT

    def unit(self, label) -> _NullContext:
        return _NULL_CONTEXT

    def dispatch(self, label) -> _NullContext:
        return _NULL_CONTEXT

    def span(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def drain(self) -> list[ReadTrace]:
        return []


NULL_TRACER = NullTracer()


class _LiveTrace:
    """Mutable build state of one open trace."""

    __slots__ = ("kind", "label", "spans", "open")

    def __init__(self, kind: str, label: str):
        self.kind = kind
        self.label = label
        self.spans: list[list] = []  # [name, parent, t0, t1]
        self.open: list[int] = []  # indices of not-yet-closed spans


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_index")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name
        self._index = -1

    def __enter__(self) -> "_SpanContext":
        self._index = self._tracer._open_span(self._name)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._index >= 0:
            self._tracer._close_span(self._index)


class _TraceContext:
    __slots__ = ("_tracer", "_kind", "_label", "_root")

    def __init__(self, tracer: "Tracer", kind: str, label: str):
        self._tracer = tracer
        self._kind = kind
        self._label = label
        self._root = -1

    def __enter__(self) -> "_TraceContext":
        self._root = self._tracer._open_trace(self._kind, self._label)
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._close_trace(self._root)


class Tracer:
    """Collects span trees per read/unit/dispatch in one process.

    Parameters
    ----------
    clock:
        Zero-argument callable returning a monotonically non-decreasing
        float. Defaults to :func:`time.perf_counter`; tests inject a
        deterministic counter so span times are reproducible.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock if clock is not None else time.perf_counter
        self._stack: list[_LiveTrace] = []
        self._done: list[ReadTrace] = []

    # -- trace contexts ------------------------------------------------
    def read(self, label) -> _TraceContext:
        """Open the span tree of one read (root span ``"read"``)."""
        return _TraceContext(self, "read", str(label))

    def unit(self, label) -> _TraceContext:
        """Open the worker-loop span of one work unit (root ``"batch"``)."""
        return _TraceContext(self, "unit", str(label))

    def dispatch(self, label) -> _TraceContext:
        """Open the serving enqueue->verdict span (root ``"dispatch"``)."""
        return _TraceContext(self, "dispatch", str(label))

    def span(self, name: str) -> _SpanContext | _NullContext:
        """A child span in the innermost open trace (no-op outside one)."""
        if not self._stack:
            return _NULL_CONTEXT
        return _SpanContext(self, name)

    def drain(self) -> list[ReadTrace]:
        """Completed traces in completion order; clears the buffer."""
        done = self._done
        self._done = []
        return done

    # -- internals -----------------------------------------------------
    def _open_trace(self, kind: str, label: str) -> int:
        live = _LiveTrace(kind, label)
        self._stack.append(live)
        return self._open_span(TRACE_KINDS[kind])

    def _close_trace(self, root: int) -> None:
        self._close_span(root)
        live = self._stack.pop()
        self._done.append(
            ReadTrace(
                kind=live.kind,
                label=live.label,
                pid=os.getpid(),
                spans=tuple(tuple(span) for span in live.spans),
            )
        )

    def _open_span(self, name: str) -> int:
        live = self._stack[-1]
        parent = live.open[-1] if live.open else -1
        index = len(live.spans)
        live.spans.append([name, parent, self._clock(), 0.0])
        live.open.append(index)
        return index

    def _close_span(self, index: int) -> None:
        live = self._stack[-1]
        live.spans[index][3] = self._clock()
        # Close any children left open by an exception unwinding through
        # the trace, then the span itself.
        while live.open and live.open[-1] >= index:
            live.open.pop()


#: Per-process tracer (None == tracing disabled), mirroring the
#: ``_PROCESS`` ledger singletons in repro.perf.copies / mapping_ops.
_PROCESS: Tracer | None = None


def active_tracer() -> Tracer | NullTracer:
    """The process tracer, or the shared no-op when tracing is off."""
    return _PROCESS if _PROCESS is not None else NULL_TRACER


def tracing_enabled() -> bool:
    return _PROCESS is not None


def enable_tracing(clock: Callable[[], float] | None = None) -> Tracer:
    """Enable process-wide tracing (idempotent; returns the tracer).

    An already-enabled process keeps its tracer (and its clock) -- the
    engine and the serving dispatcher both call this unconditionally
    when a traced run starts.
    """
    global _PROCESS
    if _PROCESS is None:
        _PROCESS = Tracer(clock)
    return _PROCESS


def disable_tracing() -> None:
    """Disable process-wide tracing and drop any undrained traces."""
    global _PROCESS
    _PROCESS = None


class _TracerScope:
    """Temporarily install a tracer as the process tracer."""

    __slots__ = ("_tracer", "_prev")

    def __init__(self, tracer: Tracer):
        self._tracer = tracer
        self._prev: Tracer | None = None

    def __enter__(self) -> Tracer:
        global _PROCESS
        self._prev = _PROCESS
        _PROCESS = self._tracer
        return self._tracer

    def __exit__(self, *exc_info) -> None:
        global _PROCESS
        _PROCESS = self._prev


def use_tracer(tracer: Tracer) -> _TracerScope:
    """Scope ``tracer`` as the process tracer (explicit-injection path).

    Lets a pipeline built with an explicit tracer (pinned clock) expose
    it to deeper instrumentation sites (the mapper's seed/chain/align
    spans) that look the tracer up via :func:`active_tracer`.
    """
    return _TracerScope(tracer)


def drain_read_traces() -> tuple[tuple, ...]:
    """Drain completed traces as compact wire tuples (ShardResult cargo).

    Returns ``()`` when tracing is disabled, so worker entry points can
    attach the result unconditionally at zero cost.
    """
    if _PROCESS is None:
        return ()
    return tuple(trace.to_tuple() for trace in _PROCESS.drain())


def decode_traces(payload: Iterable[tuple]) -> list[ReadTrace]:
    """Rehydrate wire tuples (from ShardResult) into :class:`ReadTrace`."""
    return [ReadTrace.from_tuple(item) for item in payload]
