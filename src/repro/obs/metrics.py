"""Process-wide metrics registry unifying the repo's ad-hoc ledgers.

A :class:`MetricsRegistry` names a set of **instruments** --
:class:`Counter`, :class:`Gauge`, :class:`Histogram` -- and turns them
into JSON-safe snapshots with delta/merge semantics matching the
ShardResult idiom: a worker snapshots the registry around a work unit,
ships :func:`snapshot_delta` home, and the parent folds deltas together
with :func:`merge_snapshots` (and optionally re-charges them into its
own instruments via :meth:`MetricsRegistry.absorb`).

Legacy ledger -> instrument mapping (the process registry):

=====================================  ==============================
legacy ledger                          registry instrument
=====================================  ==============================
``repro.perf.copies.CopyCounter``      ``genpip_copied_bytes``
(process ledger)                       (counter, label ``boundary``)
``repro.kernels.mapping_ops.           ``genpip_mapping_ops``
MappingOpsCounter`` (process ledger)   (counter, label ``kind``)
``repro.perf.latency.                  any ``Histogram`` instrument
LatencyHistogram``                     (``repro.serving`` registers
                                       ``genpip_serving_latency_seconds``)
=====================================  ==============================

The ledger-backed instruments *wrap* the live process ledgers instead
of duplicating them: charging ``record_copy``/``record_mapping_ops``
is immediately visible through the registry, and absorbing a worker's
counter delta re-charges the underlying ledger (which is how pooled
runs repatriate mapping-op counts for the perf models).

Imports of the wrapped ledgers are deliberately lazy (inside the
factory functions) so ``repro.obs`` stays import-cycle-free: the hot
paths in ``repro.core`` / ``repro.mapping`` import ``repro.obs.trace``,
while ``repro.perf`` sits above both.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from typing import Any

from repro.obs.export import prometheus_text

#: Canonical process-registry instrument names.
COPIED_BYTES = "genpip_copied_bytes"
MAPPING_OPS = "genpip_mapping_ops"


class Counter:
    """A keyed monotonic counter (keys are label values, e.g. a boundary)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label: str = "key"):
        self.name = name
        self.help = help
        self.label = label
        self._values: dict[str, float] = {}

    def inc(self, key: str = "", n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increments must be non-negative, got {n}")
        self._values[key] = self._values.get(key, 0) + n

    def value(self, key: str | None = None) -> float:
        if key is not None:
            return self._values.get(key, 0)
        return sum(self._values.values())

    def by_key(self) -> dict[str, float]:
        return dict(self._values)

    def reset(self) -> None:
        self._values.clear()

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "label": self.label,
            "help": self.help,
            "values": self.by_key(),
        }


class LedgerCounter(Counter):
    """A counter view over an existing process ledger.

    ``read_fn`` returns the ledger's key->value dict; ``charge_fn``
    charges ``(key, n)`` into it. The instrument holds no state of its
    own, so ledger charges made anywhere in the process are immediately
    visible in registry snapshots, and :meth:`inc` (used by
    :meth:`MetricsRegistry.absorb`) lands in the ledger itself.
    """

    def __init__(
        self,
        name: str,
        read_fn: Callable[[], Mapping[str, float]],
        charge_fn: Callable[[str, float], None],
        help: str = "",
        label: str = "key",
    ):
        super().__init__(name, help=help, label=label)
        self._read_fn = read_fn
        self._charge_fn = charge_fn

    def inc(self, key: str = "", n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increments must be non-negative, got {n}")
        self._charge_fn(key, n)

    def by_key(self) -> dict[str, float]:
        return dict(self._read_fn())

    def value(self, key: str | None = None) -> float:
        values = self._read_fn()
        if key is not None:
            return values.get(key, 0)
        return sum(values.values())

    def reset(self) -> None:
        raise TypeError(f"{self.name} wraps a process ledger; reset the ledger itself")


class Gauge:
    """A point-in-time value (peaks, live counts)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value: float = 0

    def set(self, value: float) -> None:
        self._value = value

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if higher (peak tracking)."""
        if value > self._value:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "help": self.help, "value": self._value}


class Histogram:
    """A registered latency histogram (wraps a ``LatencyHistogram``).

    Pass ``histogram=`` to adopt an existing
    :class:`~repro.perf.latency.LatencyHistogram` (the serving layer
    registers its live per-run histogram this way); otherwise a fresh
    one is built from the layout arguments.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        histogram=None,
        **layout: Any,
    ):
        self.name = name
        self.help = help
        if histogram is None:
            from repro.perf.latency import LatencyHistogram

            histogram = LatencyHistogram(**layout)
        self.histogram = histogram

    def observe(self, seconds: float) -> None:
        self.histogram.record(seconds)

    @property
    def count(self) -> int:
        return self.histogram.count

    def percentiles_ms(self) -> dict[str, float]:
        return self.histogram.percentiles_ms()

    def snapshot(self) -> dict:
        data = self.histogram.to_dict()
        data.update(
            kind=self.kind,
            help=self.help,
            # Percentiles ride the snapshot so expositions built from a
            # shipped snapshot (no live histogram) still carry them.
            **self.histogram.percentiles_ms(),
        )
        return data


class MetricsRegistry:
    """An ordered name -> instrument mapping with snapshot semantics."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    # -- construction / lookup ----------------------------------------
    def _get_or_create(self, name: str, factory, expected_type):
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, expected_type):
                raise TypeError(
                    f"instrument {name!r} already registered as "
                    f"{type(instrument).__name__}"
                )
            return instrument
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "", label: str = "key") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help, label), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def histogram(self, name: str, help: str = "", histogram=None, **layout) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, histogram=histogram, **layout), Histogram
        )

    def register(self, instrument) -> None:
        """Register a pre-built instrument under its own name."""
        if instrument.name in self._instruments:
            raise ValueError(f"instrument {instrument.name!r} already registered")
        self._instruments[instrument.name] = instrument

    def get(self, name: str):
        return self._instruments[name]

    def names(self) -> tuple[str, ...]:
        return tuple(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- snapshot / delta / merge / absorb ----------------------------
    def snapshot(self) -> dict[str, dict]:
        """JSON-safe point-in-time encoding of every instrument."""
        return {name: inst.snapshot() for name, inst in self._instruments.items()}

    def absorb(self, delta: Mapping[str, dict], names: Iterable[str] | None = None) -> None:
        """Re-charge a shipped snapshot delta into this registry.

        Counter deltas increment (ledger-backed counters charge the
        underlying process ledger -- the pooled mapping-ops repatriation
        path); histogram deltas merge counts; gauge deltas take the max
        (peak semantics). Unknown instrument names are ignored unless
        explicitly requested via ``names``.
        """
        wanted = set(names) if names is not None else None
        for name, payload in delta.items():
            if wanted is not None and name not in wanted:
                continue
            instrument = self._instruments.get(name)
            if instrument is None:
                if wanted is not None:
                    raise KeyError(f"cannot absorb into unknown instrument {name!r}")
                continue
            kind = payload.get("kind")
            if kind == "counter":
                for key, value in payload.get("values", {}).items():
                    instrument.inc(key, value)
            elif kind == "histogram":
                from repro.perf.latency import LatencyHistogram

                instrument.histogram.merge(LatencyHistogram.from_dict(payload))
            elif kind == "gauge":
                instrument.set_max(payload.get("value", 0))

    def expose(self, snapshot: Mapping[str, dict] | None = None) -> str:
        """Prometheus-style text exposition of a snapshot (default: now)."""
        return prometheus_text(snapshot if snapshot is not None else self.snapshot())


def snapshot_delta(before: Mapping[str, dict], after: Mapping[str, dict]) -> dict[str, dict]:
    """What changed between two registry snapshots (ShardResult cargo).

    Counters subtract per key (only positive movement survives);
    histograms subtract per bucket; gauges carry the ``after`` value
    when it moved. Instruments with no movement are dropped, so an idle
    registry ships ``{}``.
    """
    delta: dict[str, dict] = {}
    for name, now in after.items():
        prev = before.get(name)
        kind = now.get("kind")
        if kind == "counter":
            prev_values = (prev or {}).get("values", {})
            moved = {
                key: value - prev_values.get(key, 0)
                for key, value in now.get("values", {}).items()
                if value - prev_values.get(key, 0) > 0
            }
            if moved:
                delta[name] = {**now, "values": moved}
        elif kind == "histogram":
            prev_counts = (prev or {}).get("counts", [0] * len(now["counts"]))
            moved_counts = [a - b for a, b in zip(now["counts"], prev_counts)]
            if any(moved_counts):
                delta[name] = {**now, "counts": moved_counts}
        elif kind == "gauge" and (prev is None or now.get("value") != prev.get("value")):
            delta[name] = dict(now)
    return delta


def merge_snapshots(a: Mapping[str, dict], b: Mapping[str, dict]) -> dict[str, dict]:
    """Fold two snapshots/deltas together (counter add, bucket add,
    gauge max) -- the parent-side merge for pooled shard deltas."""
    merged: dict[str, dict] = {name: dict(payload) for name, payload in a.items()}
    for name, payload in b.items():
        base = merged.get(name)
        if base is None:
            merged[name] = dict(payload)
            continue
        kind = payload.get("kind")
        if kind == "counter":
            values = dict(base.get("values", {}))
            for key, value in payload.get("values", {}).items():
                values[key] = values.get(key, 0) + value
            base["values"] = values
        elif kind == "histogram":
            if (base["lo"], base["hi"], base["n_buckets"]) != (
                payload["lo"],
                payload["hi"],
                payload["n_buckets"],
            ):
                raise ValueError("cannot merge histograms with different bucket layouts")
            base["counts"] = [x + y for x, y in zip(base["counts"], payload["counts"])]
        elif kind == "gauge":
            base["value"] = max(base.get("value", 0), payload.get("value", 0))
    return merged


#: The per-process registry wrapping the process ledgers (lazy).
_PROCESS_REGISTRY: MetricsRegistry | None = None


def process_registry() -> MetricsRegistry:
    """The process-local registry (ledger-backed instruments included)."""
    global _PROCESS_REGISTRY
    if _PROCESS_REGISTRY is None:
        from repro.kernels.mapping_ops import process_mapping_ops
        from repro.perf.copies import process_copies

        registry = MetricsRegistry()
        copies = process_copies()
        registry.register(
            LedgerCounter(
                COPIED_BYTES,
                read_fn=copies.by_boundary,
                charge_fn=copies.record,
                help="Payload bytes copied per data-plane boundary",
                label="boundary",
            )
        )
        ops = process_mapping_ops()
        registry.register(
            LedgerCounter(
                MAPPING_OPS,
                read_fn=ops.by_kind,
                charge_fn=ops.record,
                help="Mapping kernel operations per kind",
                label="kind",
            )
        )
        _PROCESS_REGISTRY = registry
    return _PROCESS_REGISTRY


def worker_metrics_snapshot() -> dict[str, dict]:
    """Snapshot the process registry before a work unit (worker side)."""
    return process_registry().snapshot()


def worker_metrics_delta(before: Mapping[str, dict]) -> dict[str, dict]:
    """The registry movement since ``before`` (ShardResult cargo)."""
    return snapshot_delta(before, process_registry().snapshot())
