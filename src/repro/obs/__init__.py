"""Unified observability plane: span tracing, metrics, exporters.

This package answers the question the five pre-existing telemetry
idioms could not: *for one read, how long did SER, each basecalled
chunk, each ER probe, chaining, and alignment take -- and on which
worker?* It has three layers:

:mod:`repro.obs.trace`
    A process-local :class:`~repro.obs.trace.Tracer` (explicit clock
    injection, ~zero-cost :class:`~repro.obs.trace.NullTracer` when
    disabled). ``GenPIPPipeline.process_read`` opens one trace per read
    with stage spans (``ser``, ``basecall_chunk``, ``qsr_probe``,
    ``cmr_probe``, ``report``), the incremental chunk mapper adds
    ``seed``/``chain``/``align`` spans at the kernel call sites, the
    worker loop wraps each unit in a ``batch`` trace, and the serving
    dispatcher records an enqueue->verdict ``dispatch`` trace. Worker
    traces ride home as compact tuples on
    :class:`~repro.runtime.merge.ShardResult` and merge in dataset
    order.

:mod:`repro.obs.metrics`
    :class:`~repro.obs.metrics.MetricsRegistry` with
    ``Counter``/``Gauge``/``Histogram`` instruments and
    snapshot/delta/merge semantics matching the ShardResult idiom.
    The pre-existing ad-hoc ledgers are registered instruments:

    * ``repro.perf.copies.CopyCounter`` (process ledger) ->
      ``genpip_copied_bytes`` counter, label ``boundary``;
    * ``repro.kernels.mapping_ops.MappingOpsCounter`` (process ledger)
      -> ``genpip_mapping_ops`` counter, label ``kind``;
    * ``repro.perf.latency.LatencyHistogram`` -> ``Histogram``
      instruments (the serving layer registers its live
      ``genpip_serving_latency_seconds``);
    * ``RuntimeStats`` / ``ServingStats`` gain ``from_registry``
      constructors that rebuild their public fields (bit-identical)
      from registry snapshots instead of hand-threaded integers.

:mod:`repro.obs.export`
    Chrome ``trace_event`` JSON (Perfetto-loadable) and a flat JSONL
    span log (both behind ``python -m repro.runtime --trace PATH``),
    plus the Prometheus text exposition used by the serving protocol's
    ``stats`` frame and ``python -m repro.serving drive --metrics-out``.

The standing byte-identity invariant extends: tracing off leaves every
hot path untouched apart from one no-op context per span; tracing on
never changes reports or sink output -- only the side-channel trace and
metrics artifacts.
"""

from repro.obs.export import (
    chrome_trace_document,
    chrome_trace_events,
    prometheus_text,
    span_records,
    write_chrome_trace,
    write_span_jsonl,
)
from repro.obs.metrics import (
    COPIED_BYTES,
    MAPPING_OPS,
    Counter,
    Gauge,
    Histogram,
    LedgerCounter,
    MetricsRegistry,
    merge_snapshots,
    process_registry,
    snapshot_delta,
    worker_metrics_delta,
    worker_metrics_snapshot,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    ReadTrace,
    Tracer,
    active_tracer,
    decode_traces,
    disable_tracing,
    drain_read_traces,
    enable_tracing,
    tracing_enabled,
    use_tracer,
)

__all__ = [
    "COPIED_BYTES",
    "MAPPING_OPS",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "LedgerCounter",
    "MetricsRegistry",
    "NullTracer",
    "ReadTrace",
    "Tracer",
    "active_tracer",
    "chrome_trace_document",
    "chrome_trace_events",
    "decode_traces",
    "disable_tracing",
    "drain_read_traces",
    "enable_tracing",
    "merge_snapshots",
    "process_registry",
    "prometheus_text",
    "snapshot_delta",
    "span_records",
    "tracing_enabled",
    "use_tracer",
    "worker_metrics_delta",
    "worker_metrics_snapshot",
    "write_chrome_trace",
    "write_span_jsonl",
]
