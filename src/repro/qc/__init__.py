"""Read quality control (RQC) -- paper Sec. 2.1, step 2.

RQC computes the average quality score (AQS) of a basecalled read and
filters reads below a threshold (``theta_qs = 7`` following
LongQC/pycoQC practice and the paper) before read mapping. In the
conventional pipeline this runs *after* full basecalling -- the waste
GenPIP's ER-QSR eliminates.
"""

from repro.qc.read_quality import QCConfig, QCResult, apply_qc, passes_qc

__all__ = ["QCConfig", "QCResult", "apply_qc", "passes_qc"]
