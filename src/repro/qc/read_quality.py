"""Average-quality-score filtering of basecalled reads."""

from __future__ import annotations

from dataclasses import dataclass

from repro.basecalling.types import BasecalledRead


@dataclass(frozen=True)
class QCConfig:
    """Read quality control parameters.

    ``theta_qs = 7`` is the threshold used throughout the paper: a read
    whose average per-base quality falls below it is considered
    low-quality and dropped before read mapping.
    """

    theta_qs: float = 7.0

    def __post_init__(self) -> None:
        if self.theta_qs < 0:
            raise ValueError("theta_qs must be non-negative")


@dataclass(frozen=True)
class QCResult:
    """Outcome of QC over a set of reads."""

    passed: list[BasecalledRead]
    failed: list[BasecalledRead]

    @property
    def pass_fraction(self) -> float:
        total = len(self.passed) + len(self.failed)
        return len(self.passed) / total if total else 0.0


def passes_qc(read: BasecalledRead, config: QCConfig | None = None) -> bool:
    """True if the read's AQS meets the threshold."""
    config = config or QCConfig()
    return read.mean_quality >= config.theta_qs


def apply_qc(reads, config: QCConfig | None = None) -> QCResult:
    """Partition reads into passed/failed by AQS."""
    config = config or QCConfig()
    passed, failed = [], []
    for read in reads:
        (passed if passes_qc(read, config) else failed).append(read)
    return QCResult(passed=passed, failed=failed)
