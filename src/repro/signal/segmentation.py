"""Event segmentation: recover a chunk grid from raw current alone.

Every signal container this repo writes carries a ``base_starts`` track
because the synthesis knows where each base's dwell begins. Real
FAST5/SLOW5 data has no such track -- the only grid a device emits is
the sample stream itself -- so a signal-native run over real data needs
a *segmentation front-end* that infers event boundaries (one event per
base dwell, ideally) from the samples.

This module implements the standard dwell-segmentation recipe
(scrappie/tombo-style windowed t-test jump detection), fully vectorised:

1. :func:`jump_scores` -- for every interior sample position, the
   two-sample t-statistic between the ``window`` samples on each side,
   in units of the signal's robust noise scale (median absolute first
   difference). A base boundary is a level jump, which shows up as a
   large score exactly at the first sample of the new dwell.
2. :func:`detect_events` -- boundaries are local maxima of that score
   above ``threshold``, thinned to a minimum dwell of ``min_dwell``
   samples; event starts are ``[0]`` plus the surviving boundaries.
3. :func:`segment_signal` / :func:`segment_read` -- package the event
   starts as a ``base_starts`` track, so a grid-less
   :class:`~repro.nanopore.signal_read.SignalRead` gains the chunk grid
   every downstream layer (chunking, sharding, SER, decoding) consumes.

The recovered grid is *approximate* -- adjacent k-mers with similar
levels produce undetectable jumps, so some events span two dwells --
which is exactly the situation real basecallers face; the decoders
consume sample windows, not event identities, so an approximate grid
only shifts chunk boundaries. ``tests/test_signal_subsystem.py`` bounds
the drift against the simulator's declared grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nanopore.signal import RawSignal
from repro.nanopore.signal_read import SignalRead


@dataclass(frozen=True)
class SegmentationConfig:
    """Parameters of the jump-detection pass.

    Attributes
    ----------
    window:
        Samples averaged on each side of a candidate boundary. Larger
        windows suppress noise but blur boundaries closer than
        ``window`` samples apart; the default suits dwells of ~4-10
        samples (ONT-like at this repo's synthesis rate).
    threshold:
        Jump score (in robust-noise sigmas) above which a local maximum
        becomes a boundary. The score of a true level jump of ``d`` pA
        is ``|d| * sqrt(window/2) / sigma``, so 3.0 keeps false
        boundaries rare at the synthesis noise levels while catching
        the typical ~13 pA k-mer level changes.
    min_dwell:
        Minimum samples per event; closer boundaries are thinned
        (first-come in sample order), mirroring the physical minimum
        dwell of the pore.
    """

    window: int = 4
    threshold: float = 3.0
    min_dwell: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be positive")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.min_dwell < 1:
            raise ValueError("min_dwell must be positive")


def robust_noise_scale(samples: np.ndarray) -> float:
    """Noise sigma estimated from first differences (jump-insensitive).

    On flat dwell segments, consecutive-sample differences are pure
    noise with standard deviation ``sqrt(2) * sigma``; the *median*
    absolute difference ignores the rare large jumps at boundaries, so
    ``median(|diff|) / (sqrt(2) * 0.6745)`` recovers sigma even on a
    signal that is mostly steps. Returns a small positive floor for
    noise-free signals so scores stay finite.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size < 2:
        return 1.0
    mad = float(np.median(np.abs(np.diff(samples))))
    sigma = mad / (np.sqrt(2.0) * 0.6745)
    return sigma if sigma > 0 else 1e-6


def jump_scores(samples: np.ndarray, window: int) -> np.ndarray:
    """Windowed t-statistic at every sample position (vectorised).

    ``scores[i]`` compares the means of ``samples[i - window : i]`` and
    ``samples[i : i + window]`` in units of the robust noise scale:
    ``|mean_right - mean_left| * sqrt(window / 2) / sigma``. Positions
    without a full window on both sides score zero, so the array aligns
    index-for-index with ``samples`` and boundaries read off directly.
    """
    if window < 1:
        raise ValueError("window must be positive")
    samples = np.asarray(samples, dtype=np.float64)
    n = samples.size
    scores = np.zeros(n)
    if n < 2 * window:
        return scores
    sigma = robust_noise_scale(samples)
    cum = np.concatenate(([0.0], np.cumsum(samples)))
    positions = np.arange(window, n - window + 1)
    left = (cum[positions] - cum[positions - window]) / window
    right = (cum[positions + window] - cum[positions]) / window
    scores[positions] = np.abs(right - left) * np.sqrt(window / 2.0) / sigma
    return scores


def detect_events(samples: np.ndarray, config: SegmentationConfig | None = None) -> np.ndarray:
    """Event start indices for a raw sample array (``int64``).

    The first event always starts at sample 0 (so a non-empty signal
    yields at least one event); subsequent starts are the local maxima
    of :func:`jump_scores` above the threshold, thinned to the minimum
    dwell. An empty signal yields an empty array.
    """
    config = config or SegmentationConfig()
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        return np.empty(0, dtype=np.int64)
    scores = jump_scores(samples, config.window)
    # Local maxima: >= the left neighbour, > the right (on a score
    # plateau only the rightmost sample satisfies both, so ties break
    # there, deterministically).
    interior = np.zeros(scores.size, dtype=bool)
    if scores.size >= 3:
        interior[1:-1] = (
            (scores[1:-1] >= scores[:-2])
            & (scores[1:-1] > scores[2:])
            & (scores[1:-1] > config.threshold)
        )
    candidates = np.flatnonzero(interior)
    starts = [0]
    for position in candidates:
        if position - starts[-1] >= config.min_dwell:
            starts.append(int(position))
    return np.asarray(starts, dtype=np.int64)


def segment_signal(signal: RawSignal, config: SegmentationConfig | None = None) -> RawSignal:
    """The same samples with an event-derived ``base_starts`` track.

    This is the front-end for container signal written without a grid
    (real FAST5/SLOW5 never has one): the detected event starts stand
    in for base starts, giving the read a chunk grid of one "base" per
    event. Signals that already carry a track are re-segmented from
    scratch -- callers decide when that is wanted (see
    :func:`segment_read`).
    """
    return RawSignal(
        samples=signal.samples,
        base_starts=detect_events(signal.samples, config),
    )


def segment_read(read: SignalRead, config: SegmentationConfig | None = None) -> SignalRead:
    """A :class:`SignalRead` whose grid is recovered by segmentation.

    ``declared_bases`` is reset to the event count: the declared grid
    of the source read (if any) was defined over a different base
    track, so carrying it over would misalign every chunk bound.
    """
    return SignalRead(
        read_id=read.read_id,
        signal=segment_signal(read.signal, config),
    )
