"""Per-container gain/offset calibration for stored raw current.

The signal containers this repo writes store picoampere-scale samples,
which is exactly what the signal-space decoders assume. Real devices
emit DAC counts under a per-run gain and offset, and
``CarriedSignalProvider(normalize=True)`` -- per-read median/MAD to a
*nominal* scale -- destroys the absolute level information the k-mer
decoders key on. Calibration closes that gap: estimate one robust
(median, MAD) pair over a whole container, solve the affine map that
lands those statistics on the pore model's own level distribution, and
apply that *single shared* transform to every read -- per-read level
differences survive, units become pA.

Flow::

    stats = ContainerStats.from_container("run.rsig")     # one stream
    cal   = calibrate_to_pore_model(stats, pore_model)    # gain/offset
    provider = CarriedSignalProvider(calibration=cal)     # decode in pA

``ContainerStats`` aggregates per-record medians/MADs (median-of-medians
across records), so one pathological read cannot skew the container's
calibration and the stream never holds more than one record.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.nanopore.pore_model import PoreModel
from repro.nanopore.signal_store import SignalRecord, iter_signals


@dataclass(frozen=True)
class ContainerStats:
    """Robust sample statistics of one signal container.

    Attributes
    ----------
    n_records, n_samples:
        Container size (records with zero samples contribute to
        neither statistic).
    median:
        Median of the per-record sample medians.
    mad:
        Median of the per-record MADs (median absolute deviation from
        each record's own median) -- the container's typical per-read
        spread, robust to outlier reads.
    """

    n_records: int
    n_samples: int
    median: float
    mad: float

    @classmethod
    def from_records(cls, records: Iterable[SignalRecord]) -> "ContainerStats":
        """Aggregate statistics over a record stream (one pass)."""
        medians: list[float] = []
        mads: list[float] = []
        n_records = 0
        n_samples = 0
        for record in records:
            n_records += 1
            samples = np.asarray(record.signal.samples, dtype=np.float64)
            if samples.size == 0:
                continue
            n_samples += samples.size
            median = float(np.median(samples))
            medians.append(median)
            mads.append(float(np.median(np.abs(samples - median))))
        if not medians:
            return cls(n_records=n_records, n_samples=0, median=0.0, mad=0.0)
        return cls(
            n_records=n_records,
            n_samples=n_samples,
            median=float(np.median(medians)),
            mad=float(np.median(mads)),
        )

    @classmethod
    def from_container(cls, path) -> "ContainerStats":
        """Stream a container once and aggregate (O(one record) memory)."""
        return cls.from_records(iter_signals(path))


@dataclass(frozen=True)
class SignalCalibration:
    """An affine map from stored units onto the decoders' pA scale.

    ``calibrated = samples * gain + offset``; a plain picklable value,
    so a calibrated provider ships to pooled workers unchanged.
    """

    gain: float
    offset: float

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise ValueError("gain must be positive")

    def apply(self, samples: np.ndarray) -> np.ndarray:
        """Calibrated ``float32`` samples (the identity map returns as-is)."""
        if self.gain == 1.0 and self.offset == 0.0:
            return np.asarray(samples, dtype=np.float32)
        calibrated = np.asarray(samples, dtype=np.float64) * self.gain + self.offset
        return calibrated.astype(np.float32)


#: The no-op calibration (container already in pA).
IDENTITY_CALIBRATION = SignalCalibration(gain=1.0, offset=0.0)


def pore_model_stats(pore_model: PoreModel) -> tuple[float, float]:
    """(median, MAD) of the pore model's expected k-mer levels.

    This is the target distribution calibration maps a container onto:
    a correctly calibrated signal's typical level and spread match the
    pore model's, because the signal *is* (noisy dwells of) those
    levels.
    """
    levels = np.asarray(pore_model.levels, dtype=np.float64)
    median = float(np.median(levels))
    mad = float(np.median(np.abs(levels - median)))
    return median, mad


def calibrate_to_pore_model(
    stats: ContainerStats, pore_model: PoreModel
) -> SignalCalibration:
    """Solve the gain/offset that maps container units onto pA.

    Matches the container's robust (median, MAD) to the pore model's:
    ``gain = mad_pore / mad_container``,
    ``offset = median_pore - median_container * gain``. A container
    with zero spread (or no samples) cannot be calibrated and raises.
    """
    if stats.n_samples == 0 or stats.mad <= 0:
        raise ValueError(
            "container has no usable sample spread to calibrate from "
            f"(n_samples={stats.n_samples}, mad={stats.mad})"
        )
    target_median, target_mad = pore_model_stats(pore_model)
    if target_mad <= 0:  # pragma: no cover - degenerate pore model
        raise ValueError("pore model levels have zero spread")
    gain = target_mad / stats.mad
    return SignalCalibration(gain=gain, offset=target_median - stats.median * gain)


def container_calibration(path, pore_model: PoreModel) -> SignalCalibration:
    """One-call convenience: stream the container, solve the calibration."""
    return calibrate_to_pore_model(ContainerStats.from_container(path), pore_model)
