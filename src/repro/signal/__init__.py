"""Signal-domain analysis: event segmentation, SER, and calibration.

The paper's pipeline *starts* from raw current, and PR 4 made stored
current a first-class input; this package supplies the analysis layer
that makes raw current self-sufficient -- no ground-truth side channels
required:

* :mod:`repro.signal.segmentation` -- dwell/jump-detection event
  segmentation, recovering a chunk grid for container signal written
  without a ``base_starts`` track (real FAST5/SLOW5 never has one);
* :mod:`repro.signal.rejection` -- signal-domain early rejection (SER):
  the :class:`SignalRejectionPolicy` screens a read's raw-current
  prefix by subsequence DTW against reference templates and stops junk
  *before any basecalling* -- the paper's "ideally even before they go
  through basecalling" (Sec. 2.3), one stage earlier than QSR/CMR;
* :mod:`repro.signal.calibration` -- per-container gain/offset
  statistics mapping non-pA containers onto the decoders' picoampere
  scale (what per-read median/MAD normalisation cannot do without
  destroying absolute level information).

The pipeline-facing contract lives in :mod:`repro.core.backends`
(:class:`~repro.core.backends.SignalRejectionPolicyProtocol`), mirroring
the QSR/CMR policy protocols; everything here is a default
implementation behind it.
"""

from repro.signal.calibration import (
    IDENTITY_CALIBRATION,
    ContainerStats,
    SignalCalibration,
    calibrate_to_pore_model,
    container_calibration,
    pore_model_stats,
)
from repro.signal.rejection import SERDecision, SignalRejectionPolicy
from repro.signal.segmentation import (
    SegmentationConfig,
    detect_events,
    jump_scores,
    robust_noise_scale,
    segment_read,
    segment_signal,
)

__all__ = [
    "ContainerStats",
    "IDENTITY_CALIBRATION",
    "SERDecision",
    "SegmentationConfig",
    "SignalCalibration",
    "SignalRejectionPolicy",
    "calibrate_to_pore_model",
    "container_calibration",
    "detect_events",
    "jump_scores",
    "pore_model_stats",
    "robust_noise_scale",
    "segment_read",
    "segment_signal",
]
