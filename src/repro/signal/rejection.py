"""Signal-domain early rejection (SER): reject before any basecalling.

GenPIP's ER stops a useless read after a few basecalled chunks; the
paper's stated ideal (Sec. 2.3) is to stop it "even before [reads] go
through basecalling". SER is that stage: a
:class:`~repro.core.backends.SignalRejectionPolicyProtocol` policy
examines a signal-native read's *raw current prefix* and decides
reject/continue before the pipeline basecalls a single chunk. A
rejected read terminates with
:attr:`~repro.core.pipeline.ReadStatus.REJECTED_SIGNAL` and zero
basecalling work -- the earliest possible exit in the system.

The default policy here adapts the repo's existing squiggle-matching
kernel (:class:`~repro.nanopore.signal_filter.SignalPrefilter`,
subsequence DTW against expected-signal templates of reference
segments) to that protocol. Like the prefilter it wraps, it is a
*screening* filter: a read is accepted when its prefix matches any
template below the cost threshold, so genuine coverage requires
templates over the regions reads may come from (SquiggleFilter-style
whole-genome tiling for small references, targeted segments for
adaptive-sampling use). Uncovered genomic reads are indistinguishable
from junk in signal space -- callers choose the template set with that
in mind.

Policies travel to pooled workers inside the
:class:`~repro.runtime.spec.PipelineSpec`, so they must be picklable
and deterministic per read -- the same contract as basecaller engines,
and the invariant behind the serial == pooled byte-identity of SER
runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nanopore.pore_model import PoreModel
from repro.nanopore.signal_filter import SignalPrefilter
from repro.nanopore.signal_read import SignalRead


@dataclass(frozen=True)
class SERDecision:
    """Outcome of the signal-domain rejection check for one read.

    Attributes
    ----------
    reject:
        Whether the read is stopped before basecalling.
    best_cost:
        The cheapest sDTW cost over the policy's templates (``inf``
        when the read had no usable prefix).
    threshold:
        The accept threshold the cost was compared against.
    prefix_bases:
        Base-grid positions actually screened (the prefix length, in
        events/bases -- what the perf model charges the filter for).
    """

    reject: bool
    best_cost: float
    threshold: float
    prefix_bases: int


class SignalRejectionPolicy:
    """Default SER policy: subsequence-DTW screening of the signal prefix.

    Wraps a :class:`~repro.nanopore.signal_filter.SignalPrefilter`
    (expected-signal templates + banded-free sDTW) behind the
    :class:`~repro.core.backends.SignalRejectionPolicyProtocol`
    contract the pipeline consumes. ``prefix_bases`` bounds the work
    per read: only the first that-many base-grid positions of current
    are matched, mirroring Read-Until's decide-from-the-prefix regime.
    """

    def __init__(self, prefilter: SignalPrefilter, prefix_bases: int = 120):
        if prefix_bases < 1:
            raise ValueError("prefix_bases must be positive")
        self._prefilter = prefilter
        self._prefix_bases = prefix_bases

    @property
    def prefilter(self) -> SignalPrefilter:
        return self._prefilter

    @property
    def prefix_bases(self) -> int:
        return self._prefix_bases

    @classmethod
    def from_reference(
        cls,
        pore_model: PoreModel,
        reference_codes: np.ndarray,
        n_templates: int = 6,
        segment_bases: int = 250,
        threshold: float = 0.17,
        prefix_bases: int = 120,
        segment_starts: "list[int] | None" = None,
        kernel: str = "wavefront",
    ) -> "SignalRejectionPolicy":
        """Build the policy from reference segments' expected signals.

        ``segment_starts`` pins the templates to known regions (the
        targeted/adaptive-sampling use); when omitted, ``n_templates``
        segments are sampled evenly across the reference -- a sparse
        screen whose acceptances are meaningful but whose rejections
        include uncovered genomic reads (see the module docstring).
        ``kernel`` selects the sDTW kernel (all kernels are
        bit-identical in cost, so decisions do not depend on it).
        """
        reference_codes = np.asarray(reference_codes)
        if segment_starts is None:
            if n_templates < 1:
                raise ValueError("n_templates must be positive")
            span = max(int(reference_codes.size) - segment_bases, 0)
            segment_starts = [
                int(round(position))
                for position in np.linspace(0, span, num=n_templates)
            ]
        prefilter = SignalPrefilter.from_reference_segments(
            pore_model,
            reference_codes,
            segment_starts,
            segment_bases=segment_bases,
            threshold=threshold,
            kernel=kernel,
        )
        return cls(prefilter, prefix_bases=prefix_bases)

    def decide(self, read: SignalRead) -> SERDecision:
        """Screen one signal-native read's current prefix."""
        decision = self._prefilter.classify_signal(
            read.signal, prefix_bases=self._prefix_bases
        )
        return SERDecision(
            reject=not decision.accept,
            best_cost=decision.best_cost,
            threshold=decision.threshold,
            prefix_bases=min(self._prefix_bases, read.signal.n_bases),
        )
