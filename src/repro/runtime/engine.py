"""The dataset execution engine: serial or process-pool sharded runs.

:class:`DatasetEngine` turns a dataset into a stream of
:class:`~repro.runtime.sharding.WorkUnit`\\ s, executes them on a
``concurrent.futures.ProcessPoolExecutor`` (or serially in-process),
and merges shard results back into one
:class:`~repro.core.genpip.GenPIPReport`.

The engine's contract mirrors the paper's "no accuracy loss from
pipeline restructuring" claim at the software level: because reads are
independent and work units preserve dataset order through shard ids, a
run with *any* worker count and *any* batch size yields a report
identical to the sequential run -- same outcomes, same order, same
counters. ``tests/test_runtime.py`` asserts this exactly.

Worker processes are primed once with a
:class:`~repro.runtime.spec.PipelineSpec` (pool initializer), so the
minimizer index crosses the process boundary once per worker rather
than once per task. When a pool cannot be created at all (restricted
sandboxes, missing ``_multiprocessing``), the engine degrades to the
zero-dependency serial path with a warning instead of failing the run.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.genpip import GenPIPReport
from repro.core.pipeline import GenPIPPipeline
from repro.nanopore.read_simulator import SimulatedRead
from repro.runtime.merge import ShardCollector, ShardResult
from repro.runtime.sharding import WorkUnit, plan_work, resolve_batch_size, resolve_workers
from repro.runtime.spec import PipelineSpec

#: Per-process pipeline, built once by :func:`_init_worker`.
_WORKER_PIPELINE: GenPIPPipeline | None = None


def _init_worker(spec: PipelineSpec) -> None:
    """Pool initializer: rebuild the pipeline inside the worker."""
    global _WORKER_PIPELINE
    _WORKER_PIPELINE = spec.build()


def _process_unit(unit: WorkUnit) -> ShardResult:
    """Run one work unit on the per-worker pipeline."""
    pipeline = _WORKER_PIPELINE
    if pipeline is None:  # pragma: no cover - initializer contract violation
        raise RuntimeError("worker used before _init_worker primed the pipeline")
    return ShardResult.from_outcomes(unit.shard_id, pipeline.process_batch(list(unit.reads)))


@dataclass(frozen=True)
class RuntimeStats:
    """Bookkeeping of one engine run (never part of the report itself,
    so serialized reports stay bit-identical across worker counts)."""

    mode: str  # "serial" | "process-pool"
    workers: int
    batch_size: int
    n_shards: int
    n_reads: int
    elapsed_s: float

    @property
    def reads_per_sec(self) -> float:
        return self.n_reads / self.elapsed_s if self.elapsed_s > 0 else 0.0


class DatasetEngine:
    """Sharded dataset executor around one pipeline configuration.

    Parameters
    ----------
    pipeline:
        A built :class:`GenPIPPipeline` or a :class:`PipelineSpec`.
        Serial runs reuse the built pipeline directly; pooled runs ship
        the spec to each worker.
    workers:
        Pool size; ``None`` defers to ``GENPIP_WORKERS`` (default
        serial), ``0``/``1`` run serially in-process.
    batch_size:
        Reads per work unit; ``None`` auto-sizes from the dataset.
    progress:
        Optional callback ``(reads_done, reads_total)`` invoked as the
        ordered prefix of results grows.
    """

    def __init__(
        self,
        pipeline: GenPIPPipeline | PipelineSpec,
        *,
        workers: int | None = None,
        batch_size: int | None = None,
        progress: Callable[[int, int], None] | None = None,
    ):
        if isinstance(pipeline, PipelineSpec):
            self._spec = pipeline
            self._pipeline: GenPIPPipeline | None = None
        else:
            self._spec = PipelineSpec.from_pipeline(pipeline)
            self._pipeline = pipeline
        self._workers = resolve_workers(workers)
        self._batch_size = batch_size
        self._progress = progress
        self._progress_seen = 0
        self._last_stats: RuntimeStats | None = None

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def last_stats(self) -> RuntimeStats | None:
        """Stats of the most recent :meth:`run` (None before any run)."""
        return self._last_stats

    def run(self, dataset) -> GenPIPReport:
        """Process a dataset (or any sequence of reads) to a report."""
        reads: Sequence[SimulatedRead] = getattr(dataset, "reads", dataset)
        batch_size = resolve_batch_size(len(reads), self._workers, self._batch_size)
        units = plan_work(reads, batch_size)
        self._progress_seen = 0
        started = time.perf_counter()
        if self._workers <= 1:
            collector, mode = self._run_serial(units), "serial"
        else:
            collector, mode = self._run_pool(units)
        report = collector.report(self._spec.config)
        self._last_stats = RuntimeStats(
            mode=mode,
            workers=self._workers,
            batch_size=batch_size,
            n_shards=len(units),
            n_reads=len(reads),
            elapsed_s=time.perf_counter() - started,
        )
        return report

    def _serial_pipeline(self) -> GenPIPPipeline:
        if self._pipeline is None:
            self._pipeline = self._spec.build()
        return self._pipeline

    def _run_serial(self, units: list[WorkUnit]) -> ShardCollector:
        """Zero-dependency fallback: same plan/merge path, one process."""
        pipeline = self._serial_pipeline()
        collector = ShardCollector(len(units))
        total = sum(len(unit) for unit in units)
        for unit in units:
            outcomes = pipeline.process_batch(list(unit.reads))
            collector.add(ShardResult.from_outcomes(unit.shard_id, outcomes))
            self._report_progress(collector, total)
        return collector

    def _run_pool(self, units: list[WorkUnit]) -> tuple[ShardCollector, str]:
        total = sum(len(unit) for unit in units)
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(self._workers, max(len(units), 1)),
                initializer=_init_worker,
                initargs=(self._spec,),
            )
        except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); falling back to serial execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return self._run_serial(units), "serial"
        collector = ShardCollector(len(units))
        try:
            with executor:
                pending = {executor.submit(_process_unit, unit) for unit in units}
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        collector.add(future.result())
                    self._report_progress(collector, total)
        except BrokenProcessPool as exc:
            # Worker startup can fail lazily (first submit) in sandboxes
            # that allow pool *creation* but not process *spawning*.
            warnings.warn(
                f"process pool broke ({exc!r}); rerunning serially",
                RuntimeWarning,
                stacklevel=3,
            )
            return self._run_serial(units), "serial"
        return collector, "process-pool"

    def _report_progress(self, collector: ShardCollector, total: int) -> None:
        # High-water gate: a broken-pool fallback restarts from a fresh
        # collector, and progress must never appear to move backwards.
        if self._progress is not None and collector.n_ready > self._progress_seen:
            self._progress_seen = collector.n_ready
            self._progress(collector.n_ready, total)


def run_dataset(
    pipeline: GenPIPPipeline | PipelineSpec,
    dataset,
    *,
    workers: int | None = None,
    batch_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> GenPIPReport:
    """One-shot convenience wrapper around :class:`DatasetEngine`."""
    engine = DatasetEngine(pipeline, workers=workers, batch_size=batch_size, progress=progress)
    return engine.run(dataset)
