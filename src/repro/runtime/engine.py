"""The dataset execution engine: a streaming dataflow, serial or pooled.

:class:`DatasetEngine` wires the runtime's four streaming layers into
one run:

1. a :class:`~repro.runtime.source.ReadSource` supplies reads (in
   memory, lazily simulated, or decoded incrementally from an on-disk
   container -- base-space reads or signal-native raw current via
   :class:`~repro.runtime.source.SignalStoreSource`), optionally
   prefetched by a bounded background thread so pool workers never
   starve on input;
2. :func:`~repro.runtime.sharding.iter_work` plans ordered
   :class:`~repro.runtime.sharding.WorkUnit`\\ s from the stream (fixed
   read count, or length-aware base balancing that kills the long-read
   tail);
3. units execute serially in-process or on a
   ``concurrent.futures.ProcessPoolExecutor`` with a bounded in-flight
   window; pooled payloads travel either pickled or published once via
   ``multiprocessing.shared_memory`` (handles instead of payloads --
   see :mod:`repro.runtime.transport`);
4. the ordered completed prefix streams out of the
   :class:`~repro.runtime.merge.ShardCollector` into a
   :class:`~repro.runtime.sink.ReportSink` as it grows, so parent-side
   outcome retention is O(batch) with a streaming sink.

The engine's contract mirrors the paper's "no accuracy loss from
pipeline restructuring" claim at the software level: for **every**
source x sink x batching x transport combination, a run with any worker
count yields the same outcomes in the same order with the same counters
as the sequential run. ``tests/test_runtime_streaming.py`` asserts the
full matrix.

Failure handling preserves both the contract and resources: a pool that
cannot be created (or breaks mid-run) degrades to in-process execution
*resuming* exactly where the pool stopped -- already-emitted outcomes
are never re-emitted to the sink -- and shared-memory segments are
released on success, worker failure, broken-pool fallback, and engine
crash alike (:func:`repro.runtime.transport.active_segments` is the
leak probe tests use).
"""

from __future__ import annotations

import itertools
import time
import warnings
from collections.abc import Callable, Iterator
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.core.genpip import GenPIPReport
from repro.core.pipeline import GenPIPPipeline
from repro.mapping.index import MinimizerIndex
from repro.obs.metrics import (
    COPIED_BYTES,
    MAPPING_OPS,
    process_registry,
    snapshot_delta,
    worker_metrics_delta,
    worker_metrics_snapshot,
)
from repro.obs.trace import (
    ReadTrace,
    active_tracer,
    decode_traces,
    disable_tracing,
    drain_read_traces,
    enable_tracing,
    tracing_enabled,
)
from repro.perf.copies import copied_bytes, record_copy
from repro.runtime.columnar import payload_nbytes
from repro.runtime.merge import ShardCollector, ShardResult
from repro.runtime.sharding import (
    WorkUnit,
    iter_work,
    resolve_batch_size,
    resolve_batching,
    resolve_workers,
)
from repro.runtime.sink import MemorySink, ReportSink
from repro.runtime.source import Prefetcher, ReadSource, as_read_source
from repro.runtime.spec import PipelineSpec
from repro.runtime.transport import (
    SharedIndexHandle,
    SharedUnit,
    attach_unit,
    publish_index,
    publish_unit,
    release_unit,
    unit_lease,
)

#: Supported transports for pooled payloads. ``"shm-view"`` is the
#: zero-copy plane: shared-memory publication plus ``copy=False``
#: worker attach (read-only views into the segment, released via a
#: :class:`~repro.runtime.transport.SegmentLease` once the batch's
#: outcomes exist).
TRANSPORTS = ("auto", "shm", "shm-view", "pickle")

#: In-flight work units per worker (bounds parent memory and keeps the
#: pool saturated while the source streams).
_INFLIGHT_PER_WORKER = 2

#: Per-process pipeline, built once by :func:`_init_worker`.
_WORKER_PIPELINE: GenPIPPipeline | None = None


def _init_worker(spec: PipelineSpec) -> None:
    """Pool initializer: rebuild the pipeline inside the worker."""
    global _WORKER_PIPELINE
    if spec.trace:
        enable_tracing()
    _WORKER_PIPELINE = spec.build()


def _worker_pipeline() -> GenPIPPipeline:
    if _WORKER_PIPELINE is None:  # pragma: no cover - initializer contract violation
        raise RuntimeError("worker used before _init_worker primed the pipeline")
    return _WORKER_PIPELINE


def _process_unit(unit: WorkUnit) -> ShardResult:
    """Run one pickled work unit on the per-worker pipeline.

    The unit arrived as a pickle, so its payload bytes were already
    materialised in this worker by deserialisation; they are charged to
    the ``"pickle"`` boundary and shipped home as the unit's copy cost.
    Every worker entry point snapshots the metrics registry around the
    unit and ships the delta (plus any spans) home on the ShardResult.
    """
    metrics_before = worker_metrics_snapshot()
    nbytes = payload_nbytes(unit.reads)
    record_copy("pickle", nbytes)
    with active_tracer().unit(unit.shard_id):
        outcomes = _worker_pipeline().process_batch(list(unit.reads))
    return ShardResult.from_outcomes(
        unit.shard_id,
        outcomes,
        bytes_copied=nbytes,
        metrics=worker_metrics_delta(metrics_before),
        traces=drain_read_traces(),
    )


def _process_shared_unit(shared: SharedUnit) -> ShardResult:
    """Run one shared-memory work unit on the per-worker pipeline.

    Classic copy-out attach: the ``"attach"`` boundary delta taken here
    is exactly this unit's worker-side copy traffic.
    """
    metrics_before = worker_metrics_snapshot()
    before = copied_bytes("attach")
    reads = attach_unit(shared)
    with active_tracer().unit(shared.shard_id):
        outcomes = _worker_pipeline().process_batch(reads)
    return ShardResult.from_outcomes(
        shared.shard_id,
        outcomes,
        bytes_copied=copied_bytes("attach") - before,
        metrics=worker_metrics_delta(metrics_before),
        traces=drain_read_traces(),
    )


def _process_shared_unit_view(shared: SharedUnit) -> ShardResult:
    """Run one shared-memory work unit over zero-copy segment views.

    The reads' arrays are read-only views into the shared mapping; the
    lease registered by ``attach_unit(copy=False)`` keeps the mapping
    open until the outcomes exist, then the views are dropped *before*
    the release so the close does not have to be deferred. Worker-side
    copy traffic is zero by construction -- the attach-boundary delta is
    shipped anyway so the accounting stays uniform (and honest if a
    future change reintroduces a copy).
    """
    metrics_before = worker_metrics_snapshot()
    before = copied_bytes("attach")
    reads = attach_unit(shared, copy=False)
    lease = unit_lease(shared.segment)
    try:
        with active_tracer().unit(shared.shard_id):
            outcomes = _worker_pipeline().process_batch(reads)
    finally:
        del reads
        if lease is not None:
            lease.release()
    return ShardResult.from_outcomes(
        shared.shard_id,
        outcomes,
        bytes_copied=copied_bytes("attach") - before,
        metrics=worker_metrics_delta(metrics_before),
        traces=drain_read_traces(),
    )


def _pool_warmup() -> None:
    """No-op task submitted before any engine thread starts.

    With the default ``fork`` start method the executor launches *all*
    worker processes on the first submit (gh-90622), so routing that
    first submit through here -- before the :class:`Prefetcher` thread
    exists -- guarantees every fork happens while the parent is still
    single-threaded (no 3.12+ fork-after-thread DeprecationWarning, no
    inherited-lock deadlock hazard). It also surfaces sandboxes that
    allow pool *creation* but not process *spawning* before any real
    work is planned.
    """
    return None


@dataclass(frozen=True)
class RuntimeStats:
    """Bookkeeping of one engine run (never part of the report itself,
    so serialized reports stay bit-identical across worker counts).

    The backpressure fields make dataset-scale starvation visible: a
    ``prefetch_peak`` pinned at ``prefetch_capacity`` means the source
    runs ahead of the pool (workers are the bottleneck); a peak near
    zero means workers starve on input. Likewise ``inflight_peak``
    against ``inflight_window`` shows whether the submission window
    ever filled. All four are zero for runs that never entered the
    pooled path; a broken-pool run that resumed serially reports
    ``mode="serial"`` but keeps the pooled phase's values -- exactly
    the phase whose backpressure is worth inspecting post-mortem.
    """

    mode: str  # "serial" | "process-pool"
    workers: int
    batch_size: int
    n_shards: int
    n_reads: int
    elapsed_s: float
    batching: str = "fixed"  # "fixed" | "length-aware"
    transport: str = "none"  # "none" | "pickle" | "shm" | "shm-view"
    #: Whether the run had the signal-domain (pre-basecalling) early
    #: rejection stage active -- a config property surfaced here so the
    #: CLI summary can label SER runs without inspecting the pipeline.
    signal_er: bool = False
    prefetch_capacity: int = 0  # reads the producer thread may buffer
    prefetch_peak: int = 0  # high-water mark of that buffer
    inflight_window: int = 0  # max work units submitted concurrently
    inflight_peak: int = 0  # high-water mark of submitted-not-collected units
    #: Worker-side payload bytes copied to obtain reads (attach copies
    #: under "shm", deserialised payloads under "pickle", zero under
    #: "shm-view") -- summed from per-unit ShardResult deltas.
    bytes_copied: int = 0
    #: Parent-side payload bytes moved to make units reachable: shm
    #: publication ("publish" boundary) plus pickled payloads. Paid in
    #: every pooled mode -- the segment *is* the batch -- so it is
    #: reported separately from the gated copy figure above.
    bytes_published: int = 0

    @property
    def reads_per_sec(self) -> float:
        return self.n_reads / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def bytes_copied_per_read(self) -> float:
        """Worker-side copied bytes per read -- the bench's gated metric."""
        return self.bytes_copied / self.n_reads if self.n_reads > 0 else 0.0

    @classmethod
    def from_registry(
        cls,
        worker_metrics: dict,
        parent_delta: dict,
        **fields,
    ) -> "RuntimeStats":
        """Build stats with the byte accounting read from registry deltas.

        ``worker_metrics`` is the merged worker-side snapshot delta
        (:attr:`~repro.runtime.merge.ShardCollector.metrics`) --
        its ``genpip_copied_bytes`` movement *is* the worker-side
        attach/pickle traffic. ``parent_delta`` is the parent process's
        own registry movement over the run -- its publish+pickle
        movement *is* the published-bytes figure. The remaining fields
        pass through to the constructor, so the result is bit-identical
        to hand-threading ``collector.bytes_copied`` and the ledger
        snapshots (``tests/test_obs.py`` asserts exactly that).
        """
        worker_copies = worker_metrics.get(COPIED_BYTES, {}).get("values", {})
        parent_copies = parent_delta.get(COPIED_BYTES, {}).get("values", {})
        return cls(
            bytes_copied=int(sum(worker_copies.values())),
            bytes_published=int(
                parent_copies.get("publish", 0) + parent_copies.get("pickle", 0)
            ),
            **fields,
        )


class DatasetEngine:
    """Streaming dataset executor around one pipeline configuration.

    Parameters
    ----------
    pipeline:
        A built :class:`GenPIPPipeline` or a :class:`PipelineSpec`.
        Serial runs reuse the built pipeline directly; pooled runs ship
        the spec to each worker.
    workers:
        Pool size; ``None`` defers to ``GENPIP_WORKERS`` (default
        serial), ``0``/``1`` run serially in-process.
    batch_size:
        Reads per work unit; ``None`` auto-sizes from the source's size
        hint.
    progress:
        Optional callback ``(reads_done, reads_total)`` invoked as the
        ordered prefix of results grows (``reads_total`` is ``-1`` for
        unsized streaming sources).
    sink:
        Outcome consumer; ``None`` accumulates in memory into a full
        report (the classic behaviour). A
        :class:`~repro.runtime.sink.JSONLSink` keeps parent retention
        at O(batch) and its finished report carries counters only.
    batching:
        ``"fixed"`` (constant reads per unit) or ``"length-aware"``
        (units balanced by total bases; see
        :mod:`repro.runtime.sharding`).
    transport:
        How pooled payloads travel: ``"shm"`` (shared memory, workers
        copy arrays out), ``"shm-view"`` (shared memory, workers take
        zero-copy read-only views held by a segment lease),
        ``"pickle"``, or ``"auto"`` (shared memory copy mode, degrading
        to pickle if segments cannot be created). Serial runs move
        nothing.
    prefetch_depth:
        Reads buffered by the background producer thread ahead of
        planning in pooled runs; ``None`` auto-sizes from the window.
    """

    def __init__(
        self,
        pipeline: GenPIPPipeline | PipelineSpec,
        *,
        workers: int | None = None,
        batch_size: int | None = None,
        progress: Callable[[int, int], None] | None = None,
        sink: ReportSink | None = None,
        batching: str = "fixed",
        transport: str = "auto",
        prefetch_depth: int | None = None,
        trace: bool = False,
    ):
        if isinstance(pipeline, PipelineSpec):
            self._spec = pipeline
            self._pipeline: GenPIPPipeline | None = None
        else:
            self._spec = PipelineSpec.from_pipeline(pipeline)
            self._pipeline = pipeline
        self._trace = bool(trace or self._spec.trace)
        if self._trace and not self._spec.trace:
            # The flag rides the spec so pool initializers enable the
            # worker-side tracer before the first unit arrives.
            self._spec = self._spec.with_trace(True)
        self._workers = resolve_workers(workers)
        self._batch_size = batch_size
        self._progress = progress
        self._sink = sink
        self._batching = resolve_batching(batching)
        if transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {transport!r}; expected one of {TRANSPORTS}")
        self._transport = transport
        if prefetch_depth is not None and prefetch_depth < 1:
            raise ValueError(f"prefetch_depth must be positive, got {prefetch_depth}")
        self._prefetch_depth = prefetch_depth
        self._progress_seen = 0
        self._progress_total = -1
        self._backpressure: dict[str, int] = {}
        self._last_stats: RuntimeStats | None = None
        self._last_trace: list[ReadTrace] | None = None

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def last_stats(self) -> RuntimeStats | None:
        """Stats of the most recent :meth:`run` (None before any run)."""
        return self._last_stats

    @property
    def last_trace(self) -> list[ReadTrace] | None:
        """Dataset-ordered span traces of the most recent traced run
        (None before any run or when the engine was built without
        ``trace=True``)."""
        return self._last_trace

    def run(self, dataset) -> GenPIPReport:
        """Process a dataset / read source / sequence of reads.

        Returns the sink's finished report: the full per-read report
        with the default in-memory sink, or a counters-only summary
        with a streaming sink (the per-read records then live wherever
        the sink put them).
        """
        source = as_read_source(dataset)
        kind = getattr(source, "read_kind", None)
        if callable(kind) and kind() == "signals" and not self._spec.accepts_signal_reads():
            raise TypeError(
                "signal-native source requires a signal-space basecaller "
                "('viterbi', 'dnn'); the configured backend decodes base-space "
                "reads only"
            )
        sink = self._sink if self._sink is not None else MemorySink()
        hint = source.size_hint()
        batch_size = resolve_batch_size(hint, self._workers, self._batch_size)
        # A sized source bounds the useful pool: never spawn more
        # workers (each unpickling the full spec) than there can be
        # units. Fixed batching yields exactly ceil(hint/batch) units;
        # length-aware can split down to one read per unit, so only the
        # read count itself bounds it.
        pool_workers = self._workers
        if hint is not None:
            max_units = hint if self._batching == "length-aware" else -(-hint // batch_size)
            pool_workers = min(pool_workers, max(max_units, 1))
        self._progress_seen = 0
        self._progress_total = hint if hint is not None else -1
        self._backpressure = {
            "prefetch_capacity": 0,
            "prefetch_peak": 0,
            "inflight_window": 0,
            "inflight_peak": 0,
        }
        collector = ShardCollector()
        started = time.perf_counter()
        registry = process_registry()
        parent_before = registry.snapshot()
        tracing_was_on = tracing_enabled()
        if self._trace:
            enable_tracing()
        sink.begin(self._spec.config)
        try:
            if pool_workers <= 1:
                mode, transport = self._run_serial_stream(
                    iter(source), collector, sink, batch_size
                ), "none"
            else:
                mode, transport = self._run_pool_stream(
                    source, collector, sink, batch_size, pool_workers
                )
            report = sink.finish(collector.counters)
        except BaseException:
            sink.abort()
            raise
        finally:
            if self._trace and not tracing_was_on:
                disable_tracing()
        parent_delta = snapshot_delta(parent_before, registry.snapshot())
        # Repatriate pooled mapping-kernel op deltas into the parent's
        # process ledger: callers that snapshot the ledger around a run
        # (repro.experiments charging the perf models) see real chain/
        # align counts for pooled runs instead of a ~zero fallback.
        if MAPPING_OPS in collector.metrics:
            registry.absorb(collector.metrics, names=(MAPPING_OPS,))
        self._last_trace = decode_traces(collector.traces) if self._trace else None
        self._last_stats = RuntimeStats.from_registry(
            collector.metrics,
            parent_delta,
            mode=mode,
            workers=self._workers,
            batch_size=batch_size,
            n_shards=collector.expected_shards or 0,
            n_reads=collector.counters.n_reads,
            elapsed_s=time.perf_counter() - started,
            batching=self._batching,
            transport=transport,
            signal_er=self._spec.signal_rejection_enabled(),
            **self._backpressure,
        )
        return report

    def _serial_pipeline(self) -> GenPIPPipeline:
        if self._pipeline is None:
            self._pipeline = self._spec.build()
        return self._pipeline

    def _emit(self, collector: ShardCollector, sink: ReportSink) -> None:
        """Stream the newly completed ordered prefix into the sink."""
        fresh = collector.drain()
        if fresh:
            sink.emit(fresh)
        self._report_progress(collector)

    def _run_serial_stream(
        self,
        reads: Iterator,
        collector: ShardCollector,
        sink: ReportSink,
        batch_size: int,
    ) -> str:
        """In-process execution: same plan/merge/sink path, one process."""
        return self._consume_units(
            iter_work(reads, batch_size, batching=self._batching), collector, sink
        )

    def _consume_units(
        self,
        units: Iterator[WorkUnit],
        collector: ShardCollector,
        sink: ReportSink,
        n_planned: int = 0,
    ) -> str:
        """Process work units in-process, streaming the prefix out.

        ``n_planned`` is the shard-id floor already claimed by a pooled
        phase -- a broken-pool resume passes the number of units it had
        submitted, so the final expected count stays correct even when
        the highest-numbered submitted unit finished before the break.
        """
        pipeline = self._serial_pipeline()
        n_shards = n_planned
        for unit in units:
            n_shards = max(n_shards, unit.shard_id + 1)
            # Serial units charge the parent's own ledgers directly, so
            # no metrics delta rides the ShardResult; traces do (the
            # parent process is "the worker" here).
            with active_tracer().unit(unit.shard_id):
                outcomes = pipeline.process_batch(list(unit.reads))
            collector.add(
                ShardResult.from_outcomes(
                    unit.shard_id, outcomes, traces=drain_read_traces()
                )
            )
            self._emit(collector, sink)
        collector.set_expected(n_shards)
        self._report_progress(collector)
        return "serial"

    def _run_pool_stream(
        self,
        source: ReadSource,
        collector: ShardCollector,
        sink: ReportSink,
        batch_size: int,
        pool_workers: int,
    ) -> tuple[str, str]:
        # Publish the minimizer index once into shared memory so pool
        # initialisation ships a tiny handle per worker instead of
        # pickling the index max_workers times. The handle lives as
        # long as the pool might attach (released in the finally).
        # Under "auto", failure degrades to the classic pickled-index
        # initargs; an explicit "shm" request is a hard contract, for
        # the index exactly as for unit payloads in _submit.
        index_handle: SharedIndexHandle | None = None
        worker_spec = self._spec
        if self._transport in ("auto", "shm", "shm-view") and isinstance(
            self._spec.index, MinimizerIndex
        ):
            try:
                index_handle = publish_index(self._spec.index)
                worker_spec = self._spec.with_index(index_handle)
            except (OSError, ValueError, ImportError) as exc:
                if self._transport in ("shm", "shm-view"):
                    raise
                warnings.warn(
                    f"shared-memory index unavailable ({exc!r}); "
                    "shipping the pickled index to workers",
                    RuntimeWarning,
                    stacklevel=3,
                )
        try:
            return self._run_pool_stream_with_spec(
                source, collector, sink, batch_size, pool_workers, worker_spec
            )
        finally:
            if index_handle is not None:
                release_unit(index_handle.segment)

    def _run_pool_stream_with_spec(
        self,
        source: ReadSource,
        collector: ShardCollector,
        sink: ReportSink,
        batch_size: int,
        pool_workers: int,
        worker_spec: PipelineSpec,
    ) -> tuple[str, str]:
        try:
            executor = ProcessPoolExecutor(
                max_workers=pool_workers,
                initializer=_init_worker,
                initargs=(worker_spec,),
            )
        except (ImportError, NotImplementedError, OSError, PermissionError) as exc:
            warnings.warn(
                f"process pool unavailable ({exc!r}); falling back to serial execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return self._run_serial_stream(iter(source), collector, sink, batch_size), "none"

        # Launch every worker process *now*, while this process is
        # still single-threaded (see _pool_warmup), and degrade to
        # serial before planning anything if spawning is forbidden.
        try:
            executor.submit(_pool_warmup).result()
        except BrokenProcessPool as exc:
            warnings.warn(
                f"process pool broke during warm-up ({exc!r}); falling back to serial",
                RuntimeWarning,
                stacklevel=3,
            )
            executor.shutdown(wait=True, cancel_futures=True)
            return self._run_serial_stream(iter(source), collector, sink, batch_size), "none"

        window = max(pool_workers * _INFLIGHT_PER_WORKER, 2)
        depth = (
            self._prefetch_depth
            if self._prefetch_depth is not None
            else max(window * batch_size, 64)
        )
        self._backpressure["inflight_window"] = window
        self._backpressure["prefetch_capacity"] = depth
        transport = self._transport
        inflight: dict[Future, WorkUnit] = {}
        segments: dict[Future, str] = {}
        n_submitted = 0
        # Everything from here runs under the try/finally that shuts
        # the executor down -- including iter(source), which may do
        # eager work (open a file, build a simulator) and raise.
        prefetcher: Prefetcher | None = None
        # Planned-but-not-yet-submitted unit: the submit loop pulls a
        # unit *before* waiting for window room, so a pool that breaks
        # during that wait must hand this unit to the serial resume too.
        pending_unit: WorkUnit | None = None
        try:
            prefetcher = Prefetcher(iter(source), depth=depth)
            units = iter_work(iter(prefetcher), batch_size, batching=self._batching)
            try:
                for unit in units:
                    pending_unit = unit
                    while len(inflight) >= window:
                        self._collect_completed(inflight, segments, collector, sink)
                    future, segment, transport = self._submit(executor, unit, transport)
                    inflight[future] = unit
                    if len(inflight) > self._backpressure["inflight_peak"]:
                        self._backpressure["inflight_peak"] = len(inflight)
                    if segment is not None:
                        segments[future] = segment
                    n_submitted += 1
                    pending_unit = None
                while inflight:
                    self._collect_completed(inflight, segments, collector, sink)
                collector.set_expected(n_submitted)
                self._report_progress(collector)
                if n_submitted == 0:
                    # "auto" never resolved: no payload ever travelled.
                    return "process-pool", "none"
                if transport == "auto":
                    transport = "shm"
                return "process-pool", transport
            except BrokenProcessPool as exc:
                # Worker processes can die lazily (first task) in
                # sandboxes that allow pool creation but not process
                # spawning, or mid-run on resource exhaustion. Resume
                # in-process from exactly the units the pool never
                # finished -- outcomes already streamed to the sink are
                # never re-emitted.
                warnings.warn(
                    f"process pool broke ({exc!r}); resuming serially",
                    RuntimeWarning,
                    stacklevel=4,
                )
                leftovers = sorted(inflight.values(), key=lambda unit: unit.shard_id)
                if pending_unit is not None:
                    leftovers.append(pending_unit)
                for segment in segments.values():
                    release_unit(segment)
                inflight.clear()
                segments.clear()
                # ``units`` keeps planning over the live prefetcher, so
                # the resume stays streaming; its shard ids continue
                # from where the pooled phase stopped.
                mode = self._consume_units(
                    itertools.chain(leftovers, units),
                    collector,
                    sink,
                    n_planned=n_submitted,
                )
                return mode, "none"
        finally:
            if prefetcher is not None:
                self._backpressure["prefetch_peak"] = prefetcher.peak_depth
                prefetcher.close()
            executor.shutdown(wait=True, cancel_futures=True)
            for segment in segments.values():
                release_unit(segment)

    def _submit(
        self, executor: ProcessPoolExecutor, unit: WorkUnit, transport: str
    ) -> tuple[Future, str | None, str]:
        """Submit one unit, publishing via shared memory when possible.

        ``"shm-view"`` submits the zero-copy worker entry point
        (``attach_unit(copy=False)`` plus lease release); like ``"shm"``
        it is a hard contract -- only ``"auto"`` degrades to pickle.
        """
        if transport in ("auto", "shm", "shm-view"):
            try:
                shared = publish_unit(unit)
            except (OSError, ValueError, ImportError) as exc:
                if transport in ("shm", "shm-view"):
                    raise
                warnings.warn(
                    f"shared-memory transport unavailable ({exc!r}); using pickle",
                    RuntimeWarning,
                    stacklevel=4,
                )
                transport = "pickle"
            else:
                worker_fn = (
                    _process_shared_unit_view
                    if transport == "shm-view"
                    else _process_shared_unit
                )
                try:
                    future = executor.submit(worker_fn, shared)
                except BaseException:
                    release_unit(shared.segment)
                    raise
                return future, shared.segment, transport
        # Parent-side serialisation cost of the pickled payload (the
        # worker charges its deserialised copy separately).
        record_copy("pickle", payload_nbytes(unit.reads))
        return executor.submit(_process_unit, unit), None, transport

    def _collect_completed(
        self,
        inflight: dict[Future, WorkUnit],
        segments: dict[Future, str],
        collector: ShardCollector,
        sink: ReportSink,
    ) -> None:
        """Wait for at least one in-flight unit and fold it in.

        A unit is removed from ``inflight`` (and its segment released)
        only once its result is in hand, so a broken pool leaves every
        unfinished unit behind for the serial resume. A break is
        re-raised only after every *successful* result in the same wait
        batch has been collected -- work the pool finished before dying
        is never recomputed.
        """
        done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
        broken: BrokenProcessPool | None = None
        for future in done:
            try:
                result = future.result()
            except BrokenProcessPool as exc:
                broken = exc  # unit stays in ``inflight`` for the serial resume
                continue
            inflight.pop(future)
            segment = segments.pop(future, None)
            if segment is not None:
                release_unit(segment)
            collector.add(result)
        self._emit(collector, sink)
        if broken is not None:
            raise broken

    def _report_progress(self, collector: ShardCollector) -> None:
        # High-water gate: progress must never appear to move backwards.
        if self._progress is not None and collector.n_ready > self._progress_seen:
            self._progress_seen = collector.n_ready
            self._progress(collector.n_ready, self._progress_total)


def run_dataset(
    pipeline: GenPIPPipeline | PipelineSpec,
    dataset,
    *,
    workers: int | None = None,
    batch_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    sink: ReportSink | None = None,
    batching: str = "fixed",
    transport: str = "auto",
    trace: bool = False,
) -> GenPIPReport:
    """One-shot convenience wrapper around :class:`DatasetEngine`."""
    engine = DatasetEngine(
        pipeline,
        workers=workers,
        batch_size=batch_size,
        progress=progress,
        sink=sink,
        batching=batching,
        transport=transport,
        trace=trace,
    )
    return engine.run(dataset)
