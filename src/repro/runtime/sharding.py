"""Work-unit planning: split a dataset's reads into ordered shards.

Reads are embarrassingly parallel in GenPIP (no cross-read state), so
the only planning questions are *how many* reads per work unit (enough
to amortise pickling/IPC, few enough to load-balance a pool) and *how*
to stitch results back into dataset order. Each :class:`WorkUnit`
carries its shard id; the merge side keys on it, so work units can
complete in any order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro.nanopore.read_simulator import SimulatedRead

#: Environment variable consulted when ``workers=None`` is requested.
WORKERS_ENV_VAR = "GENPIP_WORKERS"

#: Work units a pool worker should see on average; > 1 so that slow
#: shards (long reads) don't serialise the tail of the run.
_UNITS_PER_WORKER = 8

#: Bounds on automatically chosen batch sizes.
_MIN_BATCH = 1
_MAX_BATCH = 256


@dataclass(frozen=True)
class WorkUnit:
    """A contiguous run of reads, tagged with its position in the plan."""

    shard_id: int
    start: int
    reads: tuple[SimulatedRead, ...]

    def __len__(self) -> int:
        return len(self.reads)


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request to an effective pool size.

    ``None`` defers to the ``GENPIP_WORKERS`` environment variable
    (absent/invalid -> 1, i.e. serial); ``0`` and ``1`` both mean
    serial in-process execution.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "")
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
        if workers < 0:  # invalid env values degrade to serial, like non-numeric ones
            workers = 1
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    return max(workers, 1)


def resolve_batch_size(n_reads: int, workers: int, batch_size: int | None) -> int:
    """Pick the reads-per-unit granularity for a run.

    Explicit requests are honoured (minimum 1). The automatic choice
    targets ``_UNITS_PER_WORKER`` units per worker so the pool stays
    load-balanced, clamped to keep per-task pickling overhead sane.
    """
    if batch_size is not None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return batch_size
    if n_reads <= 0:
        return _MIN_BATCH
    auto = -(-n_reads // max(workers * _UNITS_PER_WORKER, 1))  # ceil div
    return max(_MIN_BATCH, min(auto, _MAX_BATCH))


def plan_work(reads: Sequence[SimulatedRead], batch_size: int) -> list[WorkUnit]:
    """Split ``reads`` into consecutive :class:`WorkUnit`\\ s.

    Shard ids increase with dataset position, so concatenating shard
    results by id reproduces dataset order exactly.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    units = []
    for shard_id, start in enumerate(range(0, len(reads), batch_size)):
        units.append(
            WorkUnit(
                shard_id=shard_id,
                start=start,
                reads=tuple(reads[start : start + batch_size]),
            )
        )
    return units
