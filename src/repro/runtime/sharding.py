"""Work-unit planning: split a read stream into ordered shards.

Reads are embarrassingly parallel in GenPIP (no cross-read state), so
the only planning questions are *how much* work per unit (enough to
amortise IPC, little enough to load-balance a pool) and *how* to stitch
results back into dataset order. Each :class:`WorkUnit` carries its
shard id; the merge side keys on it, so work units can complete in any
order.

Planning is a **streaming** operation: :func:`iter_work` consumes any
read iterable and yields units as soon as they fill, so the engine can
plan from a lazy source without materialising the dataset. Two
batching modes exist:

* ``"fixed"`` -- a constant number of reads per unit (the classic
  plan);
* ``"length-aware"`` -- units are balanced by *total bases* instead of
  read count: a unit closes once its bases would exceed the running
  mean read length times ``batch_size``. Nanopore length distributions
  are heavy-tailed (Table 1: mean ~9 kb, max >100 kb), so fixed-count
  units put single 100 kb reads next to units of 1 kb reads and the
  longest shard serialises the tail of the run; base-balanced units
  isolate long reads and pack short ones densely. The rule depends
  only on the read stream's prefix, so serial and parallel runs plan
  identical units and the equivalence contract holds.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.nanopore.read_simulator import SimulatedRead

#: Environment variable consulted when ``workers=None`` is requested.
WORKERS_ENV_VAR = "GENPIP_WORKERS"

#: Supported batching modes of :func:`iter_work`.
BATCHING_MODES = ("fixed", "length-aware")

#: Work units a pool worker should see on average; > 1 so that slow
#: shards (long reads) don't serialise the tail of the run.
_UNITS_PER_WORKER = 8

#: Bounds on automatically chosen batch sizes.
_MIN_BATCH = 1
_MAX_BATCH = 256

#: Length-aware units never hold more than this many times the batch
#: size in reads (bounds per-task handle counts when a stream of very
#: short reads follows a long-read prefix).
_LENGTH_AWARE_COUNT_CAP = 4

#: Assumed dataset size when a streaming source has no size hint.
UNKNOWN_SIZE_HINT = 4096


@dataclass(frozen=True)
class WorkUnit:
    """A contiguous run of reads, tagged with its position in the plan.

    Planning is read-kind agnostic: the only contract consumed here is
    ``len(read)`` (the base-grid length), so base-space simulated reads
    and signal-native :class:`~repro.nanopore.signal_read.SignalRead`\\ s
    shard identically.
    """

    shard_id: int
    start: int
    reads: tuple[SimulatedRead, ...]

    def __len__(self) -> int:
        return len(self.reads)

    @property
    def n_bases(self) -> int:
        return sum(len(read) for read in self.reads)


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request to an effective pool size.

    ``None`` defers to the ``GENPIP_WORKERS`` environment variable
    (absent/invalid -> 1, i.e. serial); ``0`` and ``1`` both mean
    serial in-process execution.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "")
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
        if workers < 0:  # invalid env values degrade to serial, like non-numeric ones
            workers = 1
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    return max(workers, 1)


def resolve_batch_size(n_reads: int | None, workers: int, batch_size: int | None) -> int:
    """Pick the reads-per-unit granularity for a run.

    Explicit requests are honoured (minimum 1). The automatic choice
    targets ``_UNITS_PER_WORKER`` units per worker so the pool stays
    load-balanced, clamped to keep per-task pickling overhead sane.
    ``n_reads=None`` (unsized streaming source) assumes a dataset-scale
    stream of :data:`UNKNOWN_SIZE_HINT` reads.
    """
    if batch_size is not None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        return batch_size
    if n_reads is None:
        n_reads = UNKNOWN_SIZE_HINT
    if n_reads <= 0:
        return _MIN_BATCH
    auto = -(-n_reads // max(workers * _UNITS_PER_WORKER, 1))  # ceil div
    return max(_MIN_BATCH, min(auto, _MAX_BATCH))


def resolve_batching(batching: str) -> str:
    """Validate a batching-mode name."""
    if batching not in BATCHING_MODES:
        raise ValueError(
            f"unknown batching mode {batching!r}; expected one of {BATCHING_MODES}"
        )
    return batching


def iter_work(
    reads: Iterable[SimulatedRead],
    batch_size: int,
    *,
    batching: str = "fixed",
) -> Iterator[WorkUnit]:
    """Stream ordered :class:`WorkUnit`\\ s from any read iterable.

    Shard ids increase with dataset position, so concatenating shard
    results by id reproduces dataset order exactly. Units are yielded
    as soon as they fill -- the engine submits them while later reads
    are still being generated or decoded.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    resolve_batching(batching)
    if batching == "fixed":
        yield from _iter_fixed(reads, batch_size)
    else:
        yield from _iter_length_aware(reads, batch_size)


def _iter_fixed(reads: Iterable[SimulatedRead], batch_size: int) -> Iterator[WorkUnit]:
    unit: list[SimulatedRead] = []
    shard_id = 0
    start = 0
    for read in reads:
        unit.append(read)
        if len(unit) >= batch_size:
            yield WorkUnit(shard_id=shard_id, start=start, reads=tuple(unit))
            shard_id += 1
            start += len(unit)
            unit = []
    if unit:
        yield WorkUnit(shard_id=shard_id, start=start, reads=tuple(unit))


def _iter_length_aware(reads: Iterable[SimulatedRead], batch_size: int) -> Iterator[WorkUnit]:
    """Balance units by total bases: budget = batch_size x running mean.

    The budget for each read is computed from the reads seen *before*
    it (a prefix-only statistic, so planning is deterministic for a
    given stream regardless of worker count -- and a long read cannot
    inflate its own budget). A unit closes when the next read would
    push it past the budget, and immediately after any read that fills
    it on its own -- so a read longer than the budget always lands in a
    singleton unit. A read-count cap keeps units bounded when a stream
    of very short reads follows a long-read prefix.
    """
    unit: list[SimulatedRead] = []
    unit_bases = 0
    seen_reads = 0
    seen_bases = 0
    shard_id = 0
    start = 0
    count_cap = batch_size * _LENGTH_AWARE_COUNT_CAP

    def flush() -> Iterator[WorkUnit]:
        nonlocal unit, unit_bases, shard_id, start
        yield WorkUnit(shard_id=shard_id, start=start, reads=tuple(unit))
        shard_id += 1
        start += len(unit)
        unit = []
        unit_bases = 0

    for read in reads:
        n = len(read)
        budget = batch_size * (seen_bases / seen_reads) if seen_reads else None
        if unit and (
            len(unit) >= count_cap or (budget is not None and unit_bases + n > budget)
        ):
            yield from flush()
        unit.append(read)
        unit_bases += n
        if budget is not None and unit_bases >= budget:
            yield from flush()
        seen_reads += 1
        seen_bases += n
    if unit:
        yield from flush()


def plan_work(
    reads: Sequence[SimulatedRead],
    batch_size: int,
    *,
    batching: str = "fixed",
) -> list[WorkUnit]:
    """Materialised convenience wrapper around :func:`iter_work`."""
    return list(iter_work(reads, batch_size, batching=batching))
