"""Read sources: where a dataset-scale run pulls its reads from.

The GenPIP evaluation is movement-dominated (Fig. 1: the Bowden-anchor
dataset is 3913 GB of raw signal at rest), so the runtime must be able
to *stream* reads from wherever they live instead of materialising the
dataset in the parent process. A :class:`ReadSource` is anything the
engine can iterate reads from, with an optional size hint for batch
planning:

* :class:`SequenceSource` -- an in-memory sequence (a ``Dataset`` or a
  plain list of reads); re-iterable.
* :class:`SimulatorSource` -- lazy generation straight from a dataset
  profile; each iteration rebuilds the deterministic simulator, so the
  source is re-iterable and two iterations yield identical reads.
* :class:`StoreSource` -- incremental streaming from an on-disk read
  container (:func:`repro.nanopore.signal_store.iter_read_store`);
  memory is bounded by one record, re-iterable.
* :class:`SignalStoreSource` -- incremental streaming of *signal-native*
  reads (:class:`~repro.nanopore.signal_read.SignalRead`) from an
  on-disk raw-signal container (:func:`~repro.nanopore.signal_store
  .iter_signals`): the run starts from stored raw current, the paper's
  actual input artefact, and never synthesizes a signal.
* :class:`IterableSource` -- adapter for a bare iterable/generator
  (single-use unless the iterable itself is re-iterable).

:class:`Prefetcher` wraps any iterable with a bounded background
producer thread, the runtime's async-I/O stage: read
generation/decoding/disk I/O overlaps pipeline execution so pool
workers never starve on input.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.nanopore.datasets import DatasetProfile, iter_dataset_reads
from repro.nanopore.read_simulator import SimulatedRead
from repro.nanopore.signal_read import SignalRead
from repro.nanopore.signal_store import (
    iter_read_store,
    iter_signals,
    read_store_count,
    signal_count,
)


@runtime_checkable
class ReadSource(Protocol):
    """Structural protocol for read providers.

    ``__iter__`` yields reads in dataset order; ``size_hint`` returns
    the total read count when cheaply known (``None`` otherwise -- the
    engine then falls back to a default batch size).

    Sources may additionally expose ``read_kind() -> str`` declaring
    what they yield: ``"reads"`` (base-space simulated reads, the
    default when absent) or ``"signals"`` (signal-native
    :class:`~repro.nanopore.signal_read.SignalRead`\\ s). The engine
    uses it to reject a signal source fed to a base-space-only
    basecaller *before* any worker touches a read.
    """

    def __iter__(self) -> Iterator[SimulatedRead]: ...  # pragma: no cover - protocol

    def size_hint(self) -> int | None: ...  # pragma: no cover - protocol


class SequenceSource:
    """An in-memory sequence of reads (or a ``Dataset``); re-iterable."""

    def __init__(self, reads: Sequence[SimulatedRead]):
        self._reads = reads

    def __iter__(self) -> Iterator[SimulatedRead]:
        return iter(self._reads)

    def size_hint(self) -> int | None:
        return len(self._reads)


class SimulatorSource:
    """Lazy generator source: reads are simulated on demand.

    Parameters mirror :func:`repro.nanopore.datasets.generate_dataset`;
    iterating yields exactly the reads that call would materialise, one
    at a time. Each iteration builds a fresh deterministic simulator,
    so the source is re-iterable with identical results -- which is what
    lets the engine rerun the stream serially after a broken pool.
    """

    def __init__(
        self,
        profile: DatasetProfile,
        *,
        scale: float = 0.005,
        seed: int = 0,
        reference=None,
    ):
        self._profile = profile
        self._scale = scale
        self._seed = seed
        self._reference = reference

    def __iter__(self) -> Iterator[SimulatedRead]:
        return iter_dataset_reads(
            self._profile, scale=self._scale, seed=self._seed, reference=self._reference
        )

    def size_hint(self) -> int | None:
        return self._profile.scaled_read_count(self._scale)


class StoreSource:
    """Streams reads incrementally from an on-disk read container.

    Built on :func:`~repro.nanopore.signal_store.iter_read_store`:
    parent memory is bounded by one record, and the header count serves
    as the size hint. Re-iterable (each iteration reopens the file).
    """

    def __init__(self, path):
        self._path = Path(path)

    @property
    def path(self) -> Path:
        return self._path

    def __iter__(self) -> Iterator[SimulatedRead]:
        return iter_read_store(self._path)

    def size_hint(self) -> int | None:
        return read_store_count(self._path)


class SignalStoreSource:
    """Streams signal-native reads from an on-disk raw-signal container.

    Built on :func:`~repro.nanopore.signal_store.iter_signals`: each
    record becomes a :class:`~repro.nanopore.signal_read.SignalRead`
    whose samples flow to a signal-space basecaller as-is -- no
    synthesis anywhere on the path. Parent memory is bounded by one
    record, the header count is the size hint, and the source is
    re-iterable (each iteration reopens the file).

    ``segmentation`` activates the event-segmentation front-end
    (:mod:`repro.signal.segmentation`) for records that carry *no*
    base-start track -- the shape of real FAST5/SLOW5 data: such a read
    has no chunk grid, so its grid is recovered from the samples by
    jump detection before the read enters the dataflow. Segmentation
    runs here, in the parent, exactly once per read per iteration --
    the derived grid then travels to workers with the read (both
    transports ship ``base_starts``), which keeps pooled runs
    byte-identical to serial ones. Records that already carry a grid
    pass through untouched.
    """

    def __init__(self, path, segmentation=None):
        self._path = Path(path)
        self._segmentation = segmentation

    @property
    def path(self) -> Path:
        return self._path

    def __iter__(self) -> Iterator[SignalRead]:
        from repro.signal.segmentation import segment_read

        for record in iter_signals(self._path):
            read = SignalRead.from_record(record)
            if (
                self._segmentation is not None
                and read.signal.n_bases == 0
                and read.n_samples > 0
            ):
                read = segment_read(read, self._segmentation)
            yield read

    def size_hint(self) -> int | None:
        return signal_count(self._path)

    def read_kind(self) -> str:
        return "signals"


class IterableSource:
    """Adapter giving a bare iterable the :class:`ReadSource` shape."""

    def __init__(self, reads: Iterable[SimulatedRead], size_hint: int | None = None):
        self._reads = reads
        self._size_hint = size_hint

    def __iter__(self) -> Iterator[SimulatedRead]:
        return iter(self._reads)

    def size_hint(self) -> int | None:
        return self._size_hint


def as_read_source(data) -> ReadSource:
    """Coerce engine input to a :class:`ReadSource`.

    Accepts an existing source (anything with ``size_hint``), a
    ``Dataset`` (its ``reads``), a sequence of reads, or a bare
    iterable (wrapped single-use, unsized).
    """
    if hasattr(data, "size_hint") and hasattr(data, "__iter__"):
        return data
    reads = getattr(data, "reads", data)
    if isinstance(reads, Sequence):
        return SequenceSource(reads)
    return IterableSource(reads)


class PrefetchError(RuntimeError):
    """The producer thread failed; the original exception is chained."""


class Prefetcher:
    """Bounded background producer over an iterable (async-I/O stage).

    A daemon thread pulls items from the iterable into a bounded queue;
    the consumer iterates the queue. Generation/decoding therefore
    overlaps pipeline execution, and the bound keeps parent memory at
    O(depth) reads. Single-use: iterate once, then :meth:`close`.

    The consumer must call :meth:`close` (or use the context manager)
    when abandoning the stream early, so the producer thread unblocks
    and exits; exhausting the iterator closes implicitly. Exceptions in
    the underlying iterable are re-raised to the consumer as
    :class:`PrefetchError` with the cause chained.
    """

    _DONE = object()

    def __init__(self, reads: Iterable[SimulatedRead], depth: int = 64):
        if depth < 1:
            raise ValueError("prefetch depth must be positive")
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._stop = threading.Event()
        self._error: BaseException | None = None
        self._peak_depth = 0
        self._thread = threading.Thread(
            target=self._produce, args=(iter(reads),), name="genpip-prefetch", daemon=True
        )
        self._thread.start()

    @property
    def capacity(self) -> int:
        """The queue bound (how far the producer may run ahead)."""
        return self._queue.maxsize

    @property
    def peak_depth(self) -> int:
        """High-water mark of the queue (backpressure probe).

        Sampled by the producer after each put, so it is approximate by
        one consumer step -- precise enough to tell a saturated buffer
        (producer ahead, workers the bottleneck) from a starved one
        (source I/O the bottleneck).
        """
        return self._peak_depth

    def _produce(self, reads: Iterator[SimulatedRead]) -> None:
        try:
            for read in reads:
                while not self._stop.is_set():
                    try:
                        self._queue.put(read, timeout=0.1)
                        depth = self._queue.qsize()
                        if depth > self._peak_depth:
                            self._peak_depth = depth
                        break
                    except queue.Full:
                        self._peak_depth = self._queue.maxsize
                        continue
                if self._stop.is_set():
                    return
        except BaseException as exc:  # propagate to the consumer
            self._error = exc
        # The sentinel marks end-of-stream (or error); never blocks
        # forever because the consumer drains or the queue has room
        # after close() drained it.
        while not self._stop.is_set():
            try:
                self._queue.put(self._DONE, timeout=0.1)
                return
            except queue.Full:
                continue

    def __iter__(self) -> Iterator[SimulatedRead]:
        while True:
            item = self._queue.get()
            if item is self._DONE:
                if self._error is not None:
                    raise PrefetchError("read source failed during prefetch") from self._error
                return
            yield item

    def close(self) -> None:
        """Stop the producer and drain the queue (idempotent)."""
        self._stop.set()
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "Prefetcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
