"""Shared-memory transport: ship payloads to workers without pickling.

Per-task pickling of read payloads is the parent-side serial bottleneck
of a pooled run (the software analogue of the data movement GenPIP's
PIM design eliminates): the parent serialises every base and quality
value once per work unit, and each worker deserialises them again. This
module publishes payloads **once** through
``multiprocessing.shared_memory`` instead:

* :func:`publish_unit` lays a unit's payloads into one segment --
  8-byte-aligned arrays first (float64 quality tracks, int64 base-start
  tracks), then float32 signal samples, then uint8 base codes -- and
  returns a :class:`SharedUnit`: shard id, segment name, and one handle
  per read (:class:`ReadHandle` for base-space reads,
  :class:`SignalHandle` for signal-native reads carrying raw current).
  The task message that crosses the process boundary is just this
  handle bundle (~100 bytes per read).
* :func:`attach_unit` (worker side) attaches the segment, copies the
  arrays out (copies, so no view outlives the mapping), rebuilds the
  :class:`~repro.nanopore.read_simulator.SimulatedRead`\\ s /
  :class:`~repro.nanopore.signal_read.SignalRead`\\ s, and closes the
  mapping immediately.
* :func:`publish_index` / :func:`attach_index` do the same for the
  reference minimizer index: its key/position/strand arrays and the
  reference codes are laid out in **one** segment published once per
  run, so pool initialisation ships a ~100-byte
  :class:`SharedIndexHandle` to each worker instead of pickling the
  index ``max_workers`` times through the initializer.
* :func:`release_unit` / :func:`release_all` (parent side) close and
  unlink segments. The engine guarantees a release on every exit path
  -- result collected, worker exception, broken-pool fallback, engine
  crash -- and :func:`active_segments` exposes the outstanding names so
  tests can assert nothing leaked.

Worker attachment unregisters from the per-process ``resource_tracker``
(or passes ``track=False`` on Python >= 3.13): the parent owns the
segment lifecycle, and a worker's tracker must not unlink segments at
worker exit (bpo-38119).
"""

from __future__ import annotations

import itertools
import os
import secrets
from dataclasses import dataclass, replace

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platforms without POSIX shm
    # The engine treats an ImportError from publish_unit as "use the
    # pickle transport"; importing *this module* must stay safe so the
    # runtime's zero-dependency serial path keeps working everywhere.
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

import numpy as np

from repro.genomics.reference import ReferenceGenome
from repro.mapping.index import IndexEntry, MinimizerIndex
from repro.mapping.minimizers import MinimizerConfig
from repro.nanopore.read_simulator import ReadClass, SimulatedRead
from repro.nanopore.signal import RawSignal
from repro.nanopore.signal_read import SignalRead
from repro.runtime.sharding import WorkUnit

#: Prefix of every segment name this transport creates (leak checks key on it).
SEGMENT_PREFIX = "genpip-"

#: Parent-side registry of live segments: name -> SharedMemory.
_ACTIVE: dict[str, shared_memory.SharedMemory] = {}

_COUNTER = itertools.count()


@dataclass(frozen=True)
class ReadHandle:
    """Where one read's payloads live inside a shared segment."""

    read_id: str
    read_class: str  # ReadClass value
    strand: int
    ref_start: int | None
    ref_end: int | None
    seed: int
    n_bases: int
    quality_offset: int  # byte offset of the float64 quality track
    codes_offset: int  # byte offset of the uint8 base codes


@dataclass(frozen=True)
class SignalHandle:
    """Where one signal-native read's payloads live inside a segment."""

    read_id: str
    declared_bases: int
    n_samples: int
    n_starts: int
    samples_offset: int  # byte offset of the float32 sample array
    starts_offset: int  # byte offset of the int64 base-start array


@dataclass(frozen=True)
class SharedUnit:
    """A work unit whose read payloads travel via shared memory."""

    shard_id: int
    segment: str
    handles: tuple[ReadHandle | SignalHandle, ...]

    def __len__(self) -> int:
        return len(self.handles)


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}-{next(_COUNTER)}-{secrets.token_hex(3)}"


def _create_segment(size: int) -> "shared_memory.SharedMemory":
    """A fresh named segment of at least one byte."""
    if shared_memory is None:  # pragma: no cover - platforms without POSIX shm
        raise ImportError("multiprocessing.shared_memory is unavailable on this platform")
    while True:
        try:
            return shared_memory.SharedMemory(
                create=True, size=max(size, 1), name=_new_segment_name()
            )
        except FileExistsError:  # pragma: no cover - astronomically unlikely
            continue


def _discard_segment(segment: "shared_memory.SharedMemory") -> None:
    """Close and unlink a segment that was never registered (error path)."""
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - defensive
        pass


def publish_unit(unit: WorkUnit) -> SharedUnit:
    """Publish one work unit's payloads into a fresh shared segment.

    Layout keeps every array naturally aligned: the 8-byte section
    first (float64 quality tracks of base-space reads, int64 base-start
    tracks of signal-native reads, in read order), then the float32
    signal samples, then the uint8 base codes. The segment stays
    registered in the parent until :func:`release_unit`.
    """
    total8 = 0  # f64 qualities + i64 base starts
    total_samples = 0  # f32 signal samples
    total_codes = 0  # u8 base codes
    for read in unit.reads:
        if isinstance(read, SignalRead):
            total8 += 8 * read.signal.n_bases
            total_samples += 4 * read.signal.samples.size
        else:
            total8 += 8 * len(read)
            total_codes += len(read)
    segment = _create_segment(total8 + total_samples + total_codes)
    try:
        handles: list[ReadHandle | SignalHandle] = []
        offset8 = 0
        samples_offset = total8
        codes_offset = total8 + total_samples
        for read in unit.reads:
            if isinstance(read, SignalRead):
                n_starts = read.signal.n_bases
                n_samples = read.signal.samples.size
                np.frombuffer(
                    segment.buf, dtype=np.int64, count=n_starts, offset=offset8
                )[:] = read.signal.base_starts
                np.frombuffer(
                    segment.buf, dtype=np.float32, count=n_samples, offset=samples_offset
                )[:] = read.signal.samples
                handles.append(
                    SignalHandle(
                        read_id=read.read_id,
                        declared_bases=len(read),
                        n_samples=n_samples,
                        n_starts=n_starts,
                        samples_offset=samples_offset,
                        starts_offset=offset8,
                    )
                )
                offset8 += 8 * n_starts
                samples_offset += 4 * n_samples
            else:
                n = len(read)
                np.frombuffer(segment.buf, dtype=np.float64, count=n, offset=offset8)[
                    :
                ] = read.qualities
                np.frombuffer(segment.buf, dtype=np.uint8, count=n, offset=codes_offset)[
                    :
                ] = read.true_codes
                handles.append(
                    ReadHandle(
                        read_id=read.read_id,
                        read_class=read.read_class.value,
                        strand=read.strand,
                        ref_start=read.ref_start,
                        ref_end=read.ref_end,
                        seed=read.seed,
                        n_bases=n,
                        quality_offset=offset8,
                        codes_offset=codes_offset,
                    )
                )
                offset8 += 8 * n
                codes_offset += n
    except BaseException:
        _discard_segment(segment)
        raise
    _ACTIVE[segment.name] = segment
    return SharedUnit(shard_id=unit.shard_id, segment=segment.name, handles=tuple(handles))


def attach_unit(shared: SharedUnit) -> list[SimulatedRead | SignalRead]:
    """Rebuild a unit's reads from its shared segment (worker side).

    Arrays are copied out of the mapping, so the returned reads stay
    valid after the mapping is closed (which happens before returning).
    """
    segment = _attach(shared.segment)
    try:
        reads: list[SimulatedRead | SignalRead] = []
        for handle in shared.handles:
            if isinstance(handle, SignalHandle):
                samples = np.frombuffer(
                    segment.buf,
                    dtype=np.float32,
                    count=handle.n_samples,
                    offset=handle.samples_offset,
                ).copy()
                starts = np.frombuffer(
                    segment.buf,
                    dtype=np.int64,
                    count=handle.n_starts,
                    offset=handle.starts_offset,
                ).copy()
                reads.append(
                    SignalRead(
                        read_id=handle.read_id,
                        signal=RawSignal(samples=samples, base_starts=starts),
                        declared_bases=handle.declared_bases,
                    )
                )
                continue
            qualities = np.frombuffer(
                segment.buf, dtype=np.float64, count=handle.n_bases, offset=handle.quality_offset
            ).copy()
            codes = np.frombuffer(
                segment.buf, dtype=np.uint8, count=handle.n_bases, offset=handle.codes_offset
            ).copy()
            reads.append(
                SimulatedRead(
                    read_id=handle.read_id,
                    read_class=ReadClass(handle.read_class),
                    strand=handle.strand,
                    ref_start=handle.ref_start,
                    ref_end=handle.ref_end,
                    true_codes=codes,
                    qualities=qualities,
                    seed=handle.seed,
                )
            )
        return reads
    finally:
        segment.close()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker ownership.

    The parent owns the segment lifecycle; an attaching worker must not
    involve its resource tracker at all. Python >= 3.13 has
    ``track=False`` for exactly this; on older versions attach
    unconditionally registers (bpo-38119), which either double-books the
    fork-shared tracker or lets a spawn-private tracker unlink the
    segment at worker exit -- so registration is suppressed for the
    duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


# --- shared minimizer index -------------------------------------------------


@dataclass(frozen=True)
class SharedIndexHandle:
    """A reference minimizer index published once via shared memory.

    Array offsets are implied by the counts (see :func:`attach_index`):
    ``uint64`` keys, then ``int64`` entry bounds (``n_keys + 1``), then
    ``int64`` positions, then ``int8`` strands, then ``uint8`` reference
    codes. Only this handle -- name, counts, and the tiny minimizer
    config -- crosses the process boundary.
    """

    segment: str
    config: MinimizerConfig
    reference_name: str
    n_keys: int
    n_locations: int
    reference_length: int


def _index_offsets(handle: SharedIndexHandle) -> tuple[int, int, int, int]:
    """Byte offsets of (bounds, positions, strands, codes)."""
    bounds = 8 * handle.n_keys
    positions = bounds + 8 * (handle.n_keys + 1)
    strands = positions + 8 * handle.n_locations
    codes = strands + handle.n_locations
    return bounds, positions, strands, codes


def publish_index(index: MinimizerIndex) -> SharedIndexHandle:
    """Publish an index's arrays into one shared segment (parent side).

    The pickled size of a :class:`~repro.runtime.spec.PipelineSpec` is
    dominated by the index; publishing it once and shipping a handle
    removes that per-worker serialisation from pool start-up. The
    segment stays registered until :func:`release_unit` on its name.
    """
    keys = np.fromiter(index.keys(), dtype=np.uint64, count=len(index))
    entries = [index.lookup(int(key)) for key in keys]
    counts = np.fromiter(
        (entry.positions.size for entry in entries), dtype=np.int64, count=keys.size
    )
    bounds = np.zeros(keys.size + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    n_locations = int(bounds[-1])
    codes = index.reference.codes
    handle = SharedIndexHandle(
        segment="",
        config=index.config,
        reference_name=index.reference.name,
        n_keys=int(keys.size),
        n_locations=n_locations,
        reference_length=int(codes.size),
    )
    bounds_off, positions_off, strands_off, codes_off = _index_offsets(handle)
    segment = _create_segment(codes_off + codes.size)
    try:
        np.frombuffer(segment.buf, dtype=np.uint64, count=keys.size, offset=0)[:] = keys
        np.frombuffer(segment.buf, dtype=np.int64, count=bounds.size, offset=bounds_off)[
            :
        ] = bounds
        positions = np.frombuffer(
            segment.buf, dtype=np.int64, count=n_locations, offset=positions_off
        )
        strands = np.frombuffer(
            segment.buf, dtype=np.int8, count=n_locations, offset=strands_off
        )
        for i, entry in enumerate(entries):
            positions[bounds[i] : bounds[i + 1]] = entry.positions
            strands[bounds[i] : bounds[i + 1]] = entry.strands
        np.frombuffer(segment.buf, dtype=np.uint8, count=codes.size, offset=codes_off)[
            :
        ] = codes
    except BaseException:
        _discard_segment(segment)
        raise
    _ACTIVE[segment.name] = segment
    return replace(handle, segment=segment.name)


def attach_index(handle: SharedIndexHandle) -> MinimizerIndex:
    """Rebuild the index from its shared segment (worker side).

    The big arrays are copied out of the mapping once; per-key entries
    are views into those worker-private copies, so the rebuilt index
    costs one pass over the segment and no pickling. The mapping is
    closed before returning.
    """
    bounds_off, positions_off, strands_off, codes_off = _index_offsets(handle)
    segment = _attach(handle.segment)
    try:
        keys = np.frombuffer(segment.buf, dtype=np.uint64, count=handle.n_keys, offset=0).copy()
        bounds = np.frombuffer(
            segment.buf, dtype=np.int64, count=handle.n_keys + 1, offset=bounds_off
        ).copy()
        positions = np.frombuffer(
            segment.buf, dtype=np.int64, count=handle.n_locations, offset=positions_off
        ).copy()
        strands = np.frombuffer(
            segment.buf, dtype=np.int8, count=handle.n_locations, offset=strands_off
        ).copy()
        codes = np.frombuffer(
            segment.buf, dtype=np.uint8, count=handle.reference_length, offset=codes_off
        ).copy()
    finally:
        segment.close()
    table = {
        int(key): IndexEntry(
            positions=positions[bounds[i] : bounds[i + 1]],
            strands=strands[bounds[i] : bounds[i + 1]],
        )
        for i, key in enumerate(keys)
    }
    reference = ReferenceGenome(name=handle.reference_name, codes=codes)
    return MinimizerIndex(config=handle.config, table=table, reference=reference)


def release_unit(name: str) -> None:
    """Close and unlink one published segment (idempotent)."""
    segment = _ACTIVE.pop(name, None)
    if segment is None:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def release_all() -> None:
    """Release every outstanding segment (crash-path cleanup)."""
    for name in list(_ACTIVE):
        release_unit(name)


def active_segments() -> tuple[str, ...]:
    """Names of segments published but not yet released (leak probe)."""
    return tuple(sorted(_ACTIVE))
