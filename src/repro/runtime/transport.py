"""Shared-memory transport: ship payloads to workers without pickling.

Per-task pickling of read payloads is the parent-side serial bottleneck
of a pooled run (the software analogue of the data movement GenPIP's
PIM design eliminates): the parent serialises every base and quality
value once per work unit, and each worker deserialises them again. This
module publishes payloads **once** through
``multiprocessing.shared_memory`` instead:

* :func:`publish_unit` packs a unit's payloads into one segment using
  the :class:`~repro.runtime.columnar.ColumnarLayout` batch layout
  (8-byte section first -- float64 quality tracks, int64 base-start
  tracks -- then float32 signal samples, then uint8 base codes; see the
  layout diagram in :mod:`repro.runtime.columnar`) and returns a
  :class:`SharedUnit`: shard id, segment name, and one offset handle
  per read. The task message that crosses the process boundary is just
  this handle bundle (~100 bytes per read).
* :func:`attach_unit` (worker side) rebuilds the reads. ``copy=True``
  (the classic mode) copies every array out and closes the mapping
  before returning, charging the bytes to the ``"attach"`` boundary of
  :mod:`repro.perf.copies`. ``copy=False`` (the zero-copy plane)
  returns reads whose arrays are **read-only views** into the segment;
  the mapping is held open by a ref-counted :class:`SegmentLease`
  (:func:`unit_lease`) that the consumer releases once the batch's
  outcomes are produced -- the segment-lifetime handoff that lets views
  safely outlive the parent's eager :func:`release_unit` (POSIX keeps
  an unlinked segment's pages alive while any mapping remains).
* :func:`publish_index` / :func:`attach_index` do the same for the
  reference minimizer index: its key/position/strand arrays and the
  reference codes are laid out in **one** segment published once per
  run, so pool initialisation ships a ~100-byte
  :class:`SharedIndexHandle` to each worker instead of pickling the
  index ``max_workers`` times through the initializer. The rebuilt
  index's arrays are zero-copy views (see :func:`attach_index` for the
  lifetime contract).
* :func:`release_unit` / :func:`release_all` (parent side) close and
  unlink segments. The engine guarantees a release on every exit path
  -- result collected, worker exception, broken-pool fallback, engine
  crash -- and :func:`active_segments` exposes the outstanding names so
  tests can assert nothing leaked. :func:`worker_leases` is the
  worker-side counterpart for the zero-copy plane.

Worker attachment unregisters from the per-process ``resource_tracker``
(or passes ``track=False`` on Python >= 3.13): the parent owns the
segment lifecycle, and a worker's tracker must not unlink segments at
worker exit (bpo-38119).
"""

from __future__ import annotations

import contextlib
import itertools
import os
import secrets
from dataclasses import dataclass, replace

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platforms without POSIX shm
    # The engine treats an ImportError from publish_unit as "use the
    # pickle transport"; importing *this module* must stay safe so the
    # runtime's zero-dependency serial path keeps working everywhere.
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

import numpy as np

from repro.genomics.reference import ReferenceGenome
from repro.mapping.index import MinimizerIndex
from repro.mapping.minimizers import MinimizerConfig
from repro.nanopore.read_simulator import SimulatedRead
from repro.nanopore.signal_read import SignalRead
from repro.runtime.columnar import (
    ColumnarBatch,
    ColumnarLayout,
    ReadHandle,
    SignalHandle,
)
from repro.runtime.sharding import WorkUnit

__all__ = [
    "SEGMENT_PREFIX",
    "ReadHandle",
    "SignalHandle",
    "SharedUnit",
    "SharedIndexHandle",
    "SegmentLease",
    "publish_unit",
    "attach_unit",
    "publish_index",
    "attach_index",
    "release_unit",
    "release_all",
    "active_segments",
    "unit_lease",
    "worker_leases",
    "reap_leases",
]

#: Prefix of every segment name this transport creates (leak checks key on it).
SEGMENT_PREFIX = "genpip-"

#: Parent-side registry of live segments: name -> SharedMemory.
_ACTIVE: dict[str, shared_memory.SharedMemory] = {}

_COUNTER = itertools.count()


@dataclass(frozen=True)
class SharedUnit:
    """A work unit whose read payloads travel via shared memory."""

    shard_id: int
    segment: str
    handles: tuple[ReadHandle | SignalHandle, ...]

    def __len__(self) -> int:
        return len(self.handles)


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}-{next(_COUNTER)}-{secrets.token_hex(3)}"


def _create_segment(size: int) -> "shared_memory.SharedMemory":
    """A fresh named segment of at least one byte."""
    if shared_memory is None:  # pragma: no cover - platforms without POSIX shm
        raise ImportError("multiprocessing.shared_memory is unavailable on this platform")
    while True:
        try:
            return shared_memory.SharedMemory(
                create=True, size=max(size, 1), name=_new_segment_name()
            )
        except FileExistsError:  # pragma: no cover - astronomically unlikely
            continue


def _discard_segment(segment: "shared_memory.SharedMemory") -> None:
    """Close and unlink a segment that was never registered (error path)."""
    segment.close()
    with contextlib.suppress(FileNotFoundError):  # defensive
        segment.unlink()


def publish_unit(unit: WorkUnit) -> SharedUnit:
    """Publish one work unit's payloads into a fresh shared segment.

    The segment holds exactly one :class:`~repro.runtime.columnar
    .ColumnarLayout` batch (every array naturally aligned; see the
    layout diagram in :mod:`repro.runtime.columnar`) and stays
    registered in the parent until :func:`release_unit`.
    """
    layout = ColumnarLayout.plan(unit.reads)
    segment = _create_segment(layout.total_bytes)
    try:
        layout.pack_into(segment.buf, unit.reads)
    except BaseException:
        _discard_segment(segment)
        raise
    _ACTIVE[segment.name] = segment
    return SharedUnit(
        shard_id=unit.shard_id, segment=segment.name, handles=layout.handles
    )


# --- worker-side segment leases (zero-copy attach) ---------------------------


class SegmentLease:
    """A ref-counted worker-side hold on an attached unit segment.

    The zero-copy attach hands out numpy views into the mapping; the
    mapping must therefore stay open until every consumer of the batch
    is done -- *after* the outcomes are produced, which is later than
    the parent's :func:`release_unit` (safe: POSIX keeps the unlinked
    segment's pages alive while the mapping exists). Consumers call
    :meth:`acquire` to extend the hold and :meth:`release` when done;
    the final release closes the mapping.

    A close attempted while views are still alive (e.g. an exception
    traceback pinning the batch, or a provider cache holding a
    normalised copy keyed by the view) raises ``BufferError`` inside
    CPython's mmap teardown; the lease *defers* such a close instead of
    propagating, and :func:`reap_leases` retries once the views are
    garbage (every subsequent attach reaps opportunistically). Process
    exit reclaims any mapping that never got its retry -- the parent
    already unlinked the name, so nothing persists in ``/dev/shm``.
    """

    __slots__ = ("_segment", "_name", "_refs", "_closed", "_deferred")

    def __init__(self, segment: "shared_memory.SharedMemory"):
        self._segment = segment
        self._name = segment.name
        self._refs = 1
        self._closed = False
        self._deferred = False

    @property
    def name(self) -> str:
        return self._name

    @property
    def refs(self) -> int:
        return self._refs

    @property
    def closed(self) -> bool:
        """Whether the mapping has actually been closed."""
        return self._closed

    @property
    def deferred(self) -> bool:
        """Whether the final release is waiting on live views (GC)."""
        return self._deferred

    def acquire(self) -> "SegmentLease":
        if self._closed or self._refs <= 0:
            raise RuntimeError(f"lease on {self._name} already fully released")
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one hold; the last drop closes (or defers) the mapping."""
        if self._closed or self._refs <= 0:
            return
        self._refs -= 1
        if self._refs == 0:
            self._try_close()

    def _try_close(self) -> None:
        try:
            self._segment.close()
        except BufferError:
            # numpy views into the mapping are still exported; closing
            # now would pull the pages out from under them. Retry via
            # reap_leases() once they are garbage.
            self._deferred = True
            return
        self._deferred = False
        self._closed = True
        _LEASES.pop(self._name, None)


#: Worker-side registry of leases not yet closed: segment name -> lease.
_LEASES: dict[str, SegmentLease] = {}


def unit_lease(name: str) -> SegmentLease | None:
    """The live lease of an attached segment (None once closed)."""
    return _LEASES.get(name)


def worker_leases() -> tuple[str, ...]:
    """Names of leases still *held* (refs > 0) in this process.

    The worker-side leak probe: after a batch's outcomes are produced
    and its lease released, this must be empty (a deferred close waiting
    only on garbage collection no longer counts as held).
    """
    return tuple(sorted(name for name, lease in _LEASES.items() if lease.refs > 0))


def reap_leases() -> None:
    """Retry deferred closes whose views have since been collected."""
    for lease in list(_LEASES.values()):
        if lease.deferred and lease.refs == 0:
            lease._try_close()


def attach_unit(
    shared: SharedUnit, copy: bool = True
) -> list[SimulatedRead | SignalRead]:
    """Rebuild a unit's reads from its shared segment (worker side).

    ``copy=True`` (default, the classic mode): arrays are copied out of
    the mapping -- charged to the ``"attach"`` copy boundary -- and the
    mapping is closed before returning, so the reads have no lifetime
    ties to the segment.

    ``copy=False`` (the zero-copy plane): arrays are **read-only views**
    into the mapping. The mapping is held open by a
    :class:`SegmentLease` registered under the segment name
    (:func:`unit_lease`); the caller must ``release()`` it after the
    batch's outcomes are produced. Until then the views remain valid
    even after the parent unlinks the segment.
    """
    reap_leases()
    segment = _attach(shared.segment)
    batch = ColumnarBatch.from_buffer(segment.buf, shared.handles)
    if copy:
        try:
            reads = batch.reads(copy=True)
        finally:
            # Drop the batch's buffer reference before closing: a live
            # view would turn close() into a BufferError.
            del batch
            segment.close()
        return reads
    _LEASES[shared.segment] = SegmentLease(segment)
    return batch.reads(copy=False)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker ownership.

    The parent owns the segment lifecycle; an attaching worker must not
    involve its resource tracker at all. Python >= 3.13 has
    ``track=False`` for exactly this; on older versions attach
    unconditionally registers (bpo-38119), which either double-books the
    fork-shared tracker or lets a spawn-private tracker unlink the
    segment at worker exit -- so registration is suppressed for the
    duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


# --- shared minimizer index -------------------------------------------------


@dataclass(frozen=True)
class SharedIndexHandle:
    """A reference minimizer index published once via shared memory.

    Array offsets are implied by the counts (see :func:`attach_index`):
    ``uint64`` keys, then ``int64`` entry bounds (``n_keys + 1``), then
    ``int64`` positions, then ``int8`` strands, then ``uint8`` reference
    codes. Only this handle -- name, counts, and the tiny minimizer
    config -- crosses the process boundary.
    """

    segment: str
    config: MinimizerConfig
    reference_name: str
    n_keys: int
    n_locations: int
    reference_length: int


def _index_offsets(handle: SharedIndexHandle) -> tuple[int, int, int, int]:
    """Byte offsets of (bounds, positions, strands, codes)."""
    bounds = 8 * handle.n_keys
    positions = bounds + 8 * (handle.n_keys + 1)
    strands = positions + 8 * handle.n_locations
    codes = strands + handle.n_locations
    return bounds, positions, strands, codes


def publish_index(index: MinimizerIndex) -> SharedIndexHandle:
    """Publish an index's arrays into one shared segment (parent side).

    The pickled size of a :class:`~repro.runtime.spec.PipelineSpec` is
    dominated by the index; publishing it once and shipping a handle
    removes that per-worker serialisation from pool start-up. The index
    already stores the segment's exact columnar layout
    (:attr:`~repro.mapping.index.MinimizerIndex.key_array` et al.), so
    publishing is five straight array copies -- no per-key Python. The
    segment stays registered until :func:`release_unit` on its name.
    """
    keys = index.key_array
    bounds = index.bounds_array
    codes = index.reference.codes
    n_locations = index.n_locations()
    handle = SharedIndexHandle(
        segment="",
        config=index.config,
        reference_name=index.reference.name,
        n_keys=int(keys.size),
        n_locations=n_locations,
        reference_length=int(codes.size),
    )
    bounds_off, positions_off, strands_off, codes_off = _index_offsets(handle)
    segment = _create_segment(codes_off + codes.size)
    try:
        np.frombuffer(segment.buf, dtype=np.uint64, count=keys.size, offset=0)[:] = keys
        np.frombuffer(segment.buf, dtype=np.int64, count=bounds.size, offset=bounds_off)[
            :
        ] = bounds
        np.frombuffer(
            segment.buf, dtype=np.int64, count=n_locations, offset=positions_off
        )[:] = index.position_array
        np.frombuffer(
            segment.buf, dtype=np.int8, count=n_locations, offset=strands_off
        )[:] = index.strand_array
        np.frombuffer(segment.buf, dtype=np.uint8, count=codes.size, offset=codes_off)[
            :
        ] = codes
    except BaseException:
        _discard_segment(segment)
        raise
    _ACTIVE[segment.name] = segment
    return replace(handle, segment=segment.name)


#: Process-lifetime index mappings: segment name -> SharedMemory.
#: attach_index views point into these; dropping the SharedMemory object
#: would let its __del__ close the mapping under the views, so each
#: attached index mapping is pinned here for the life of the process.
_INDEX_ATTACHMENTS: dict[str, shared_memory.SharedMemory] = {}


def attach_index(handle: SharedIndexHandle) -> MinimizerIndex:
    """Rebuild the index from its shared segment (worker side, zero-copy).

    The rebuilt index's arrays -- per-key position/strand slices and the
    reference codes -- are **read-only views** into the shared mapping:
    one attach costs one page-table mapping, not a copy of the index
    (previously every worker duplicated all five arrays).

    Lifetime contract: the mapping is pinned for the remaining life of
    the attaching process (an index outlives every work unit by
    design -- the engine publishes it before the pool starts and
    releases it after the pool is done). The parent may unlink the
    segment at any time; POSIX keeps the pages alive until the attached
    mappings disappear with the worker processes. Each distinct segment
    name is attached at most once per process, so re-entrant pipeline
    builds share one mapping.
    """
    bounds_off, positions_off, strands_off, codes_off = _index_offsets(handle)
    segment = _INDEX_ATTACHMENTS.get(handle.segment)
    if segment is None:
        segment = _attach(handle.segment)
        _INDEX_ATTACHMENTS[handle.segment] = segment

    def view(dtype, count: int, offset: int) -> np.ndarray:
        arr = np.frombuffer(segment.buf, dtype=dtype, count=count, offset=offset)
        arr.flags.writeable = False
        return arr

    keys = view(np.uint64, handle.n_keys, 0)
    bounds = view(np.int64, handle.n_keys + 1, bounds_off)
    positions = view(np.int64, handle.n_locations, positions_off)
    strands = view(np.int8, handle.n_locations, strands_off)
    codes = view(np.uint8, handle.reference_length, codes_off)
    reference = ReferenceGenome(name=handle.reference_name, codes=codes)
    # The segment layout IS the index's columnar layout: the rebuilt
    # index wraps the four views directly, with zero per-key Python.
    return MinimizerIndex.from_arrays(
        handle.config, keys, bounds, positions, strands, reference
    )


def release_unit(name: str) -> None:
    """Close and unlink one published segment (idempotent)."""
    segment = _ACTIVE.pop(name, None)
    if segment is None:
        return
    segment.close()
    with contextlib.suppress(FileNotFoundError):  # already unlinked
        segment.unlink()


def release_all() -> None:
    """Release every outstanding segment (crash-path cleanup)."""
    for name in list(_ACTIVE):
        release_unit(name)


def active_segments() -> tuple[str, ...]:
    """Names of segments published but not yet released (leak probe)."""
    return tuple(sorted(_ACTIVE))
