"""Shared-memory transport: ship read payloads to workers without pickling.

Per-task pickling of read payloads is the parent-side serial bottleneck
of a pooled run (the software analogue of the data movement GenPIP's
PIM design eliminates): the parent serialises every base and quality
value once per work unit, and each worker deserialises them again. This
module publishes a work unit's payloads **once** through
``multiprocessing.shared_memory`` instead:

* :func:`publish_unit` lays a unit's quality tracks (float64, 8-byte
  aligned, first) and base codes (uint8, after) into one segment and
  returns a :class:`SharedUnit` -- shard id, segment name, and
  per-read :class:`ReadHandle`\\ s. The task message that crosses the
  process boundary is just this handle bundle (~100 bytes per read).
* :func:`attach_unit` (worker side) attaches the segment, copies the
  arrays out (copies, so no view outlives the mapping), rebuilds the
  :class:`~repro.nanopore.read_simulator.SimulatedRead`\\ s, and closes
  the mapping immediately.
* :func:`release_unit` / :func:`release_all` (parent side) close and
  unlink segments. The engine guarantees a release on every exit path
  -- result collected, worker exception, broken-pool fallback, engine
  crash -- and :func:`active_segments` exposes the outstanding names so
  tests can assert nothing leaked.

Worker attachment unregisters from the per-process ``resource_tracker``
(or passes ``track=False`` on Python >= 3.13): the parent owns the
segment lifecycle, and a worker's tracker must not unlink segments at
worker exit (bpo-38119).
"""

from __future__ import annotations

import itertools
import os
import secrets
from dataclasses import dataclass

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platforms without POSIX shm
    # The engine treats an ImportError from publish_unit as "use the
    # pickle transport"; importing *this module* must stay safe so the
    # runtime's zero-dependency serial path keeps working everywhere.
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

import numpy as np

from repro.nanopore.read_simulator import ReadClass, SimulatedRead
from repro.runtime.sharding import WorkUnit

#: Prefix of every segment name this transport creates (leak checks key on it).
SEGMENT_PREFIX = "genpip-"

#: Parent-side registry of live segments: name -> SharedMemory.
_ACTIVE: dict[str, shared_memory.SharedMemory] = {}

_COUNTER = itertools.count()


@dataclass(frozen=True)
class ReadHandle:
    """Where one read's payloads live inside a shared segment."""

    read_id: str
    read_class: str  # ReadClass value
    strand: int
    ref_start: int | None
    ref_end: int | None
    seed: int
    n_bases: int
    quality_offset: int  # byte offset of the float64 quality track
    codes_offset: int  # byte offset of the uint8 base codes


@dataclass(frozen=True)
class SharedUnit:
    """A work unit whose read payloads travel via shared memory."""

    shard_id: int
    segment: str
    handles: tuple[ReadHandle, ...]

    def __len__(self) -> int:
        return len(self.handles)


def _new_segment_name() -> str:
    return f"{SEGMENT_PREFIX}{os.getpid()}-{next(_COUNTER)}-{secrets.token_hex(3)}"


def publish_unit(unit: WorkUnit) -> SharedUnit:
    """Publish one work unit's payloads into a fresh shared segment.

    Layout: all quality tracks first (each ``8 * n_bases`` bytes, so
    every track is 8-byte aligned), then all code arrays. The segment
    stays registered in the parent until :func:`release_unit`.
    """
    if shared_memory is None:  # pragma: no cover - platforms without POSIX shm
        raise ImportError("multiprocessing.shared_memory is unavailable on this platform")
    total_quals = sum(8 * len(read) for read in unit.reads)
    total_codes = sum(len(read) for read in unit.reads)
    size = max(total_quals + total_codes, 1)
    while True:
        try:
            segment = shared_memory.SharedMemory(
                create=True, size=size, name=_new_segment_name()
            )
            break
        except FileExistsError:  # pragma: no cover - astronomically unlikely
            continue
    try:
        handles = []
        quality_offset = 0
        codes_offset = total_quals
        for read in unit.reads:
            n = len(read)
            np.frombuffer(segment.buf, dtype=np.float64, count=n, offset=quality_offset)[
                :
            ] = read.qualities
            np.frombuffer(segment.buf, dtype=np.uint8, count=n, offset=codes_offset)[
                :
            ] = read.true_codes
            handles.append(
                ReadHandle(
                    read_id=read.read_id,
                    read_class=read.read_class.value,
                    strand=read.strand,
                    ref_start=read.ref_start,
                    ref_end=read.ref_end,
                    seed=read.seed,
                    n_bases=n,
                    quality_offset=quality_offset,
                    codes_offset=codes_offset,
                )
            )
            quality_offset += 8 * n
            codes_offset += n
    except BaseException:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - defensive
            pass
        raise
    _ACTIVE[segment.name] = segment
    return SharedUnit(shard_id=unit.shard_id, segment=segment.name, handles=tuple(handles))


def attach_unit(shared: SharedUnit) -> list[SimulatedRead]:
    """Rebuild a unit's reads from its shared segment (worker side).

    Arrays are copied out of the mapping, so the returned reads stay
    valid after the mapping is closed (which happens before returning).
    """
    segment = _attach(shared.segment)
    try:
        reads = []
        for handle in shared.handles:
            qualities = np.frombuffer(
                segment.buf, dtype=np.float64, count=handle.n_bases, offset=handle.quality_offset
            ).copy()
            codes = np.frombuffer(
                segment.buf, dtype=np.uint8, count=handle.n_bases, offset=handle.codes_offset
            ).copy()
            reads.append(
                SimulatedRead(
                    read_id=handle.read_id,
                    read_class=ReadClass(handle.read_class),
                    strand=handle.strand,
                    ref_start=handle.ref_start,
                    ref_end=handle.ref_end,
                    true_codes=codes,
                    qualities=qualities,
                    seed=handle.seed,
                )
            )
        return reads
    finally:
        segment.close()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker ownership.

    The parent owns the segment lifecycle; an attaching worker must not
    involve its resource tracker at all. Python >= 3.13 has
    ``track=False`` for exactly this; on older versions attach
    unconditionally registers (bpo-38119), which either double-books the
    fork-shared tracker or lets a spawn-private tracker unlink the
    segment at worker exit -- so registration is suppressed for the
    duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def release_unit(name: str) -> None:
    """Close and unlink one published segment (idempotent)."""
    segment = _ACTIVE.pop(name, None)
    if segment is None:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


def release_all() -> None:
    """Release every outstanding segment (crash-path cleanup)."""
    for name in list(_ACTIVE):
        release_unit(name)


def active_segments() -> tuple[str, ...]:
    """Names of segments published but not yet released (leak probe)."""
    return tuple(sorted(_ACTIVE))
