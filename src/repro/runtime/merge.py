"""Order-preserving merge of out-of-order shard results.

Workers finish in whatever order the scheduler dictates;
:class:`ShardCollector` re-sequences their :class:`ShardResult`\\ s so
the caller can stream the *completed prefix* of the dataset to a
:class:`~repro.runtime.sink.ReportSink` while later shards are still in
flight. :meth:`ShardCollector.drain` **releases** the outcomes it
returns -- once a sink has consumed the prefix, the parent retains
nothing but exact integer counters, which is what keeps dataset-scale
streaming runs at O(batch) parent memory.

The total shard count may be unknown while a streaming plan is still
being generated; the engine declares it via :meth:`set_expected` once
the plan is exhausted.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.core.config import GenPIPConfig
from repro.core.genpip import GenPIPReport, ReportCounters
from repro.core.pipeline import ReadOutcome
from repro.obs.metrics import merge_snapshots


@dataclass(frozen=True)
class ShardResult:
    """One work unit's outcomes plus its pre-summed counters.

    Counters are computed *in the worker*, so the parent merges shard
    aggregates by integer addition instead of re-walking outcomes.
    """

    shard_id: int
    outcomes: tuple[ReadOutcome, ...]
    counters: ReportCounters
    #: Worker-side payload bytes copied to obtain this unit's reads
    #: (attach copies / pickled payloads; zero on the zero-copy plane).
    #: Pure bookkeeping -- never part of the report or its counters.
    bytes_copied: int = 0
    #: Worker-side metrics-registry movement of this unit (a
    #: :func:`repro.obs.metrics.snapshot_delta`): copied bytes and
    #: mapping-kernel ops the parent process never saw. Empty for
    #: serially executed units, whose charges land in the parent's
    #: own process ledgers directly.
    metrics: Mapping[str, dict] = field(default_factory=dict)
    #: Completed span traces of this unit as compact wire tuples
    #: (:meth:`repro.obs.trace.ReadTrace.to_tuple`); empty when
    #: tracing is off.
    traces: tuple = ()

    @classmethod
    def from_outcomes(
        cls,
        shard_id: int,
        outcomes: list[ReadOutcome],
        bytes_copied: int = 0,
        metrics: Mapping[str, dict] | None = None,
        traces: tuple = (),
    ) -> "ShardResult":
        return cls(
            shard_id=shard_id,
            outcomes=tuple(outcomes),
            counters=ReportCounters.from_outcomes(outcomes),
            bytes_copied=bytes_copied,
            metrics=metrics if metrics is not None else {},
            traces=tuple(traces),
        )


class ShardCollector:
    """Accumulates shard results by id and streams the ordered prefix."""

    def __init__(self, n_shards: int | None = None):
        self._n_shards = n_shards
        self._pending: dict[int, ShardResult] = {}
        self._outcomes: list[ReadOutcome] = []
        self._counters = ReportCounters()
        self._next_shard = 0
        self._n_ready = 0
        self._drained = 0
        self._bytes_copied = 0
        self._metrics: dict[str, dict] = {}
        self._traces: list[tuple] = []

    def set_expected(self, n_shards: int) -> None:
        """Declare the total shard count (streaming plans learn it late)."""
        if self._n_shards is not None and self._n_shards != n_shards:
            raise ValueError(
                f"expected shard count already set to {self._n_shards}, got {n_shards}"
            )
        highest = max(self._pending, default=self._next_shard - 1)
        if n_shards <= highest:
            raise ValueError(
                f"expected shard count {n_shards} below already-delivered id {highest}"
            )
        self._n_shards = n_shards

    def add(self, result: ShardResult) -> None:
        """Accept one shard result (any order, each id exactly once)."""
        if result.shard_id < 0 or (
            self._n_shards is not None and result.shard_id >= self._n_shards
        ):
            raise ValueError(f"shard id {result.shard_id} outside plan of {self._n_shards}")
        if result.shard_id < self._next_shard or result.shard_id in self._pending:
            raise ValueError(f"shard id {result.shard_id} delivered twice")
        self._bytes_copied += result.bytes_copied
        if result.metrics:
            self._metrics = merge_snapshots(self._metrics, result.metrics)
        self._pending[result.shard_id] = result
        while self._next_shard in self._pending:
            ready = self._pending.pop(self._next_shard)
            self._outcomes.extend(ready.outcomes)
            self._n_ready += len(ready.outcomes)
            self._counters = self._counters.combine(ready.counters)
            # Traces join the ordered prefix (dataset order); unlike
            # outcomes they are never drained -- a traced run keeps its
            # spans for the whole run, which is fine because tracing is
            # opt-in diagnostics, not the streaming hot path.
            self._traces.extend(ready.traces)
            self._next_shard += 1

    @property
    def complete(self) -> bool:
        return (
            self._n_shards is not None
            and self._next_shard == self._n_shards
            and not self._pending
        )

    @property
    def expected_shards(self) -> int | None:
        """Declared total shard count (None until the plan is known)."""
        return self._n_shards

    @property
    def n_ready(self) -> int:
        """Reads ever part of the contiguous completed prefix."""
        return self._n_ready

    @property
    def counters(self) -> ReportCounters:
        """Exact merged counters of the completed prefix so far."""
        return self._counters

    @property
    def bytes_copied(self) -> int:
        """Summed worker-side copy traffic of every accepted shard."""
        return self._bytes_copied

    @property
    def metrics(self) -> dict[str, dict]:
        """Merged worker-side registry deltas of every accepted shard."""
        return self._metrics

    @property
    def traces(self) -> tuple:
        """Dataset-ordered span traces (wire tuples) of the completed
        prefix; empty unless the run was traced."""
        return tuple(self._traces)

    def drain(self) -> list[ReadOutcome]:
        """Outcomes newly added to the ordered prefix since last drain.

        The returned outcomes are **released** from the collector --
        after a drain, the parent's only copy is whatever the caller
        (typically a sink) does with them. A collector that has been
        drained can no longer assemble a full report itself.
        """
        fresh = self._outcomes
        self._outcomes = []
        self._drained += len(fresh)
        return fresh

    def report(self, config: GenPIPConfig) -> GenPIPReport:
        """The merged dataset report (requires all shards, no drains)."""
        if not self.complete:
            missing = (self._n_shards or 0) - self._next_shard
            raise RuntimeError(f"cannot build report: {missing} shard(s) outstanding")
        if self._drained:
            raise RuntimeError(
                "cannot build report: outcomes were drained to a sink; "
                "use the sink's finished report instead"
            )
        return GenPIPReport(outcomes=self._outcomes, config=config, counters=self._counters)
