"""Order-preserving merge of out-of-order shard results.

Workers finish in whatever order the scheduler dictates;
:class:`ShardCollector` re-sequences their :class:`ShardResult`\\ s so
the caller can stream the *completed prefix* of the dataset (e.g. for
progress reporting) while later shards are still in flight, and finally
assemble a :class:`~repro.core.genpip.GenPIPReport` whose outcome order
and counters are identical to a sequential run's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import GenPIPConfig
from repro.core.genpip import GenPIPReport, ReportCounters
from repro.core.pipeline import ReadOutcome


@dataclass(frozen=True)
class ShardResult:
    """One work unit's outcomes plus its pre-summed counters.

    Counters are computed *in the worker*, so the parent merges shard
    aggregates by integer addition instead of re-walking outcomes.
    """

    shard_id: int
    outcomes: tuple[ReadOutcome, ...]
    counters: ReportCounters

    @classmethod
    def from_outcomes(cls, shard_id: int, outcomes: list[ReadOutcome]) -> "ShardResult":
        return cls(
            shard_id=shard_id,
            outcomes=tuple(outcomes),
            counters=ReportCounters.from_outcomes(outcomes),
        )


class ShardCollector:
    """Accumulates shard results by id and exposes the ordered prefix."""

    def __init__(self, n_shards: int):
        self._n_shards = n_shards
        self._pending: dict[int, ShardResult] = {}
        self._outcomes: list[ReadOutcome] = []
        self._counters = ReportCounters()
        self._next_shard = 0
        self._drained = 0

    def add(self, result: ShardResult) -> None:
        """Accept one shard result (any order, each id exactly once)."""
        if not 0 <= result.shard_id < self._n_shards:
            raise ValueError(f"shard id {result.shard_id} outside plan of {self._n_shards}")
        if result.shard_id < self._next_shard or result.shard_id in self._pending:
            raise ValueError(f"shard id {result.shard_id} delivered twice")
        self._pending[result.shard_id] = result
        while self._next_shard in self._pending:
            ready = self._pending.pop(self._next_shard)
            self._outcomes.extend(ready.outcomes)
            self._counters = self._counters.combine(ready.counters)
            self._next_shard += 1

    @property
    def complete(self) -> bool:
        return self._next_shard == self._n_shards and not self._pending

    @property
    def n_ready(self) -> int:
        """Reads in the contiguous completed prefix."""
        return len(self._outcomes)

    def drain(self) -> list[ReadOutcome]:
        """Outcomes newly added to the ordered prefix since last drain."""
        fresh = self._outcomes[self._drained :]
        self._drained = len(self._outcomes)
        return fresh

    def report(self, config: GenPIPConfig) -> GenPIPReport:
        """The merged dataset report (requires all shards delivered)."""
        if not self.complete:
            missing = self._n_shards - self._next_shard
            raise RuntimeError(f"cannot build report: {missing} shard(s) outstanding")
        return GenPIPReport(outcomes=self._outcomes, config=config, counters=self._counters)
