"""One columnar batch layout from shared segment to kernels to sinks.

The shm publisher has always written work units *columnar*: per-batch
contiguous buffers grouped by element width, with per-read offset
tables. This module makes that layout a first-class representation --
planned once (:class:`ColumnarLayout`), packed once, and then **viewed**
everywhere else (:class:`ColumnarBatch`): the worker's reads, the
kernel plane's sample windows, and the prefilter's screening slices are
read-only numpy views into the same segment bytes the parent wrote, so
a batch crosses the process boundary with zero worker-side copies.

Layout diagram -- byte offsets of one packed batch (``total8`` /
``total_samples`` / ``total_codes`` are the section byte sizes)::

    byte 0                     total8            total8+total_samples
    |-------- 8-byte section --|- sample section -|- code section ----|
    | f64 quality tracks and   | f32 raw current  | u8 2-bit base     |
    | i64 base-start tracks,   | of signal reads, | codes of base-    |
    | interleaved in read      | in read order    | space reads, in   |
    | order (8-byte aligned)   | (4-byte aligned) | read order        |
    +--------------------------+------------------+-------------------+
                                                          total_bytes ^

    column           dtype    offset table (per read handle)
    ---------------  -------  --------------------------------------
    quality          float64  ReadHandle.quality_offset, n_bases
    codes            uint8    ReadHandle.codes_offset,   n_bases
    samples          float32  SignalHandle.samples_offset, n_samples
    base_starts      int64    SignalHandle.starts_offset,  n_starts

Sections are ordered by descending alignment so every array is
naturally aligned without padding. A batch may mix base-space reads
(quality + codes columns) and signal-native reads (samples +
base_starts columns); each read's handle records exactly where its
slices live, so per-read access is an O(1) view, never a gather.

Zero-copy safety rests on two properties of the read dataclasses:
``np.ascontiguousarray`` returns an already-contiguous correctly-typed
array *unchanged* (so ``RawSignal``/``SimulatedRead`` construction
preserves view-ness), and every view is marked read-only before it
escapes (shared bytes must never be writable through a view -- other
workers may be reading the same physical pages).

Lifetime: views are only valid while the mapping they point into is
open. :func:`repro.runtime.transport.attach_unit` pairs ``copy=False``
views with a ref-counted :class:`~repro.runtime.transport.SegmentLease`
that holds the worker-side mapping open until the batch's outcomes are
produced -- see the transport module for the handoff protocol.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.nanopore.read_simulator import ReadClass, SimulatedRead
from repro.nanopore.signal import RawSignal
from repro.nanopore.signal_read import SignalRead
from repro.perf.copies import record_copy


@dataclass(frozen=True)
class ReadHandle:
    """Where one base-space read's payloads live inside a packed batch."""

    read_id: str
    read_class: str  # ReadClass value
    strand: int
    ref_start: int | None
    ref_end: int | None
    seed: int
    n_bases: int
    quality_offset: int  # byte offset of the float64 quality track
    codes_offset: int  # byte offset of the uint8 base codes


@dataclass(frozen=True)
class SignalHandle:
    """Where one signal-native read's payloads live inside a packed batch."""

    read_id: str
    declared_bases: int
    n_samples: int
    n_starts: int
    samples_offset: int  # byte offset of the float32 sample array
    starts_offset: int  # byte offset of the int64 base-start array


@dataclass(frozen=True)
class ColumnarLayout:
    """The offset plan of one batch: handles plus section byte sizes.

    :meth:`plan` computes it from the reads alone (no buffer needed), so
    the same plan serves size queries (:attr:`total_bytes`), segment
    sizing, and :meth:`pack_into`.
    """

    handles: tuple[ReadHandle | SignalHandle, ...]
    total8: int  # bytes of the f64-quality / i64-base-start section
    total_samples: int  # bytes of the f32 sample section
    total_codes: int  # bytes of the u8 code section

    @property
    def total_bytes(self) -> int:
        return self.total8 + self.total_samples + self.total_codes

    @classmethod
    def plan(cls, reads: Sequence[SimulatedRead | SignalRead]) -> "ColumnarLayout":
        """Lay the reads out: one pass to size sections, one to place."""
        total8 = 0
        total_samples = 0
        total_codes = 0
        for read in reads:
            if isinstance(read, SignalRead):
                total8 += 8 * read.signal.n_bases
                total_samples += 4 * read.signal.samples.size
            else:
                total8 += 8 * len(read)
                total_codes += len(read)
        handles: list[ReadHandle | SignalHandle] = []
        offset8 = 0
        samples_offset = total8
        codes_offset = total8 + total_samples
        for read in reads:
            if isinstance(read, SignalRead):
                n_starts = read.signal.n_bases
                n_samples = read.signal.samples.size
                handles.append(
                    SignalHandle(
                        read_id=read.read_id,
                        declared_bases=len(read),
                        n_samples=n_samples,
                        n_starts=n_starts,
                        samples_offset=samples_offset,
                        starts_offset=offset8,
                    )
                )
                offset8 += 8 * n_starts
                samples_offset += 4 * n_samples
            else:
                n = len(read)
                handles.append(
                    ReadHandle(
                        read_id=read.read_id,
                        read_class=read.read_class.value,
                        strand=read.strand,
                        ref_start=read.ref_start,
                        ref_end=read.ref_end,
                        seed=read.seed,
                        n_bases=n,
                        quality_offset=offset8,
                        codes_offset=codes_offset,
                    )
                )
                offset8 += 8 * n
                codes_offset += n
        return cls(
            handles=tuple(handles),
            total8=total8,
            total_samples=total_samples,
            total_codes=total_codes,
        )

    def pack_into(self, buf, reads: Sequence[SimulatedRead | SignalRead]) -> int:
        """Write the reads' arrays into ``buf`` at their planned offsets.

        This is the data plane's *one* copy (the "publish" boundary; it
        exists in both copy modes -- the segment is the batch) and is
        charged to the process :class:`~repro.perf.copies.CopyCounter`.
        Returns the bytes written.
        """
        for handle, read in zip(self.handles, reads, strict=True):
            if isinstance(handle, SignalHandle):
                np.frombuffer(
                    buf, dtype=np.int64, count=handle.n_starts, offset=handle.starts_offset
                )[:] = read.signal.base_starts
                np.frombuffer(
                    buf,
                    dtype=np.float32,
                    count=handle.n_samples,
                    offset=handle.samples_offset,
                )[:] = read.signal.samples
            else:
                np.frombuffer(
                    buf, dtype=np.float64, count=handle.n_bases, offset=handle.quality_offset
                )[:] = read.qualities
                np.frombuffer(
                    buf, dtype=np.uint8, count=handle.n_bases, offset=handle.codes_offset
                )[:] = read.true_codes
        record_copy("publish", self.total_bytes)
        return self.total_bytes


def payload_nbytes(reads: Sequence[SimulatedRead | SignalRead]) -> int:
    """Array payload bytes of a batch (what any transport must move)."""
    total = 0
    for read in reads:
        if isinstance(read, SignalRead):
            total += 8 * read.signal.n_bases + 4 * read.signal.samples.size
        else:
            total += 9 * len(read)  # f64 qualities + u8 codes
    return total


def _view(buf, dtype, count: int, offset: int) -> np.ndarray:
    """A read-only numpy view into ``buf`` (shared bytes stay immutable)."""
    view = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
    view.flags.writeable = False
    return view


class ColumnarBatch:
    """Read-only columnar access over one packed batch buffer.

    Wraps a buffer (typically a shared segment's mapping) plus the
    handles that index it. Every accessor returns a read-only view --
    nothing is copied unless :meth:`reads` is asked to
    (``copy=True``, the classic attach behaviour, charged to the
    ``"attach"`` boundary).

    The batch does not own the buffer's lifetime: whoever holds the
    mapping open (a :class:`~repro.runtime.transport.SegmentLease` on
    the worker side) must outlive every view taken from here.
    """

    def __init__(self, buf, handles: Sequence[ReadHandle | SignalHandle]):
        self._buf = buf
        self._handles = tuple(handles)

    @classmethod
    def from_buffer(
        cls, buf, handles: Sequence[ReadHandle | SignalHandle]
    ) -> "ColumnarBatch":
        return cls(buf, handles)

    @classmethod
    def from_reads(
        cls, reads: Sequence[SimulatedRead | SignalRead]
    ) -> "tuple[ColumnarBatch, ColumnarLayout]":
        """Pack reads into a fresh private buffer (tests, local kernels)."""
        layout = ColumnarLayout.plan(reads)
        buf = bytearray(max(layout.total_bytes, 1))
        layout.pack_into(buf, reads)
        return cls(buf, layout.handles), layout

    def __len__(self) -> int:
        return len(self._handles)

    @property
    def handles(self) -> tuple[ReadHandle | SignalHandle, ...]:
        return self._handles

    # --- column views -------------------------------------------------

    def quality(self, i: int) -> np.ndarray:
        """Read ``i``'s float64 quality track (base-space reads)."""
        handle = self._handles[i]
        if not isinstance(handle, ReadHandle):
            raise TypeError(f"read {i} is signal-native; it has no quality track")
        return _view(self._buf, np.float64, handle.n_bases, handle.quality_offset)

    def codes(self, i: int) -> np.ndarray:
        """Read ``i``'s uint8 base codes (base-space reads)."""
        handle = self._handles[i]
        if not isinstance(handle, ReadHandle):
            raise TypeError(f"read {i} is signal-native; it has no base codes")
        return _view(self._buf, np.uint8, handle.n_bases, handle.codes_offset)

    def samples(self, i: int) -> np.ndarray:
        """Read ``i``'s float32 raw current (signal-native reads)."""
        handle = self._handles[i]
        if not isinstance(handle, SignalHandle):
            raise TypeError(f"read {i} is base-space; it has no sample column")
        return _view(self._buf, np.float32, handle.n_samples, handle.samples_offset)

    def base_starts(self, i: int) -> np.ndarray:
        """Read ``i``'s int64 base-start track (signal-native reads)."""
        handle = self._handles[i]
        if not isinstance(handle, SignalHandle):
            raise TypeError(f"read {i} is base-space; it has no base-start track")
        return _view(self._buf, np.int64, handle.n_starts, handle.starts_offset)

    def signal_window(self, i: int, start_base: int, end_base: int) -> np.ndarray:
        """Zero-copy sample window of read ``i`` over a base interval.

        The window the kernel plane consumes: bounds are clamped to the
        modelled positions exactly like
        :meth:`~repro.nanopore.signal.RawSignal.clamped_slice`, and the
        result is a view into the batch buffer -- the batched DNN pack
        and the sDTW prefilter read the segment bytes directly.
        """
        handle = self._handles[i]
        if not isinstance(handle, SignalHandle):
            raise TypeError(f"read {i} is base-space; it has no sample column")
        starts = self.base_starts(i)
        samples = self.samples(i)
        n_bases = starts.size
        start_base = max(0, min(start_base, n_bases))
        end_base = max(start_base, min(end_base, n_bases))
        if start_base == end_base:
            return samples[:0]
        lo = int(starts[start_base])
        hi = int(starts[end_base]) if end_base < n_bases else samples.size
        return samples[lo:hi]

    # --- read reconstruction -----------------------------------------

    def reads(self, copy: bool = False) -> list[SimulatedRead | SignalRead]:
        """Rebuild the batch's reads from the columnar buffers.

        ``copy=False`` (the zero-copy plane): every array is a read-only
        view into the batch buffer; the caller owns keeping the buffer
        alive for as long as the reads are used. ``copy=True``: arrays
        are copied out (the classic worker attach), and the copied bytes
        are charged to the ``"attach"`` boundary.
        """
        reads: list[SimulatedRead | SignalRead] = []
        copied = 0
        for i, handle in enumerate(self._handles):
            if isinstance(handle, SignalHandle):
                samples = self.samples(i)
                starts = self.base_starts(i)
                if copy:
                    copied += samples.nbytes + starts.nbytes
                    samples = samples.copy()
                    starts = starts.copy()
                reads.append(
                    SignalRead(
                        read_id=handle.read_id,
                        signal=RawSignal(samples=samples, base_starts=starts),
                        declared_bases=handle.declared_bases,
                    )
                )
                continue
            qualities = self.quality(i)
            codes = self.codes(i)
            if copy:
                copied += qualities.nbytes + codes.nbytes
                qualities = qualities.copy()
                codes = codes.copy()
            reads.append(
                SimulatedRead(
                    read_id=handle.read_id,
                    read_class=ReadClass(handle.read_class),
                    strand=handle.strand,
                    ref_start=handle.ref_start,
                    ref_end=handle.ref_end,
                    true_codes=codes,
                    qualities=qualities,
                    seed=handle.seed,
                )
            )
        if copy:
            record_copy("attach", copied)
        return reads
