"""``python -m repro.runtime``: scriptable dataset-scale GenPIP runs.

Generates a preset dataset, builds the index, executes the pipeline
through the sharded :class:`~repro.runtime.engine.DatasetEngine`, and
writes a deterministic JSON report. The JSON intentionally contains no
timing or worker information -- a serial run and an ``N``-worker run of
the same dataset must serialize to byte-identical files, which is
exactly what the CI smoke job diffs.

Examples
--------
Serial run, report to stdout::

    python -m repro.runtime --profile ecoli-like --scale 0.001 --json -

Two workers, batches of 8, report to a file::

    python -m repro.runtime --profile ecoli-like --scale 0.001 \\
        --workers 2 --batch-size 8 --json report.json

Any registered basecaller backend and pipeline preset plugs in (keep
signal-space backends to tiny scales -- they decode real signal)::

    python -m repro.runtime --basecaller viterbi --preset ecoli \\
        --scale 0.0002 --max-read-length 1500
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.config import VARIANTS, variant_config
from repro.core.genpip import GenPIP, GenPIPReport
from repro.core.pipeline import ReadOutcome
from repro.core.registry import basecaller_names, preset_config, preset_names
from repro.mapping.index import MinimizerIndex
from repro.nanopore.datasets import PRESETS, generate_dataset, small_profile
from repro.runtime.engine import DatasetEngine


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Run the GenPIP pipeline over a generated dataset preset.",
    )
    data = parser.add_argument_group("dataset")
    data.add_argument(
        "--profile", choices=sorted(PRESETS), default="ecoli-like",
        help="dataset preset (Table 1 recipe)",
    )
    data.add_argument(
        "--scale", type=float, default=0.001,
        help="fraction of the real dataset's read count to generate",
    )
    data.add_argument("--seed", type=int, default=42, help="simulation seed")
    data.add_argument(
        "--max-read-length", type=int, default=None, metavar="BASES",
        help="cap read lengths via the small-profile transform (fast smoke runs)",
    )
    pipe = parser.add_argument_group("pipeline")
    pipe.add_argument(
        "--basecaller", choices=basecaller_names(), default="surrogate",
        help="basecaller backend from the registry",
    )
    pipe.add_argument(
        "--preset", choices=preset_names(), default=None, metavar="NAME",
        help="pipeline preset (e.g. ecoli, human); default: the profile's Sec. 6.3 parameters",
    )
    pipe.add_argument(
        "--variant", choices=VARIANTS, default="full_er",
        help="early-rejection variant of the evaluation",
    )
    pipe.add_argument("--chunk-size", type=int, default=300, help="bases per chunk")
    pipe.add_argument(
        "--align", action="store_true",
        help="run base-level alignment (slower; off by default like the sweeps)",
    )
    run = parser.add_argument_group("runtime")
    run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: GENPIP_WORKERS env or serial)",
    )
    run.add_argument(
        "--batch-size", type=int, default=None, metavar="READS",
        help="reads per work unit (default: auto)",
    )
    out = parser.add_argument_group("output")
    out.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write the JSON report to PATH ('-' for stdout)",
    )
    out.add_argument("--quiet", action="store_true", help="suppress the stderr summary")
    return parser


def _mapping_record(outcome: ReadOutcome) -> dict | None:
    mapping = outcome.mapping
    if mapping is None:
        return None
    return {
        "mapped": mapping.mapped,
        "ref_start": mapping.ref_start,
        "ref_end": mapping.ref_end,
        "strand": mapping.strand,
        "chain_score": mapping.chain_score,
        "mapq": mapping.mapq,
        "identity": mapping.identity,
    }


def _read_record(outcome: ReadOutcome) -> dict:
    return {
        "read_id": outcome.read_id,
        "status": outcome.status.value,
        "read_length": outcome.read_length,
        "n_chunks_total": outcome.n_chunks_total,
        "n_chunks_basecalled": outcome.n_chunks_basecalled,
        "n_bases_basecalled": outcome.n_bases_basecalled,
        "n_chunks_seeded": outcome.n_chunks_seeded,
        "n_chain_invocations": outcome.n_chain_invocations,
        "aligned": outcome.aligned,
        "mean_quality": outcome.mean_quality,
        "mapping": _mapping_record(outcome),
    }


def report_to_json(report: GenPIPReport, run_args: dict) -> str:
    """Serialize a report deterministically (sorted keys, no timing)."""
    counters = report.counters
    document = {
        "run": run_args,
        "summary": {
            "n_reads": report.n_reads,
            "total_bases": report.total_bases,
            "total_chunks": report.total_chunks,
            "chunks_basecalled": report.chunks_basecalled,
            "bases_basecalled": report.bases_basecalled,
            "chunks_seeded": report.chunks_seeded,
            "reads_aligned": report.reads_aligned,
            "basecall_savings": report.basecall_savings,
            "mapped_ratio": report.mapped_ratio,
            "qsr_rejection_ratio": report.qsr_rejection_ratio,
            "cmr_rejection_ratio": report.cmr_rejection_ratio,
            "mean_identity": report.mean_identity(),
            "status_counts": {
                status.value: count for status, count in counters.status_counts.items()
            },
        },
        "reads": [_read_record(outcome) for outcome in report.outcomes],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.scale <= 0:
        parser.error("--scale must be positive")
    if args.workers is not None and args.workers < 0:
        parser.error("--workers must be non-negative")
    if args.batch_size is not None and args.batch_size < 1:
        parser.error("--batch-size must be at least 1")
    if args.chunk_size < 50:
        parser.error("--chunk-size must be at least 50 bases")

    profile = PRESETS[args.profile]
    if args.max_read_length is not None:
        profile = small_profile(profile, max_read_length=args.max_read_length)
    dataset = generate_dataset(profile, scale=args.scale, seed=args.seed)
    index = MinimizerIndex.build(dataset.reference)
    # The registry's profile-name aliases carry each dataset's Sec. 6.3
    # parameters, so the profile default and --preset share one source.
    base_config = preset_config(args.preset or args.profile)
    config = variant_config(base_config.with_chunk_size(args.chunk_size), args.variant)

    system = (
        GenPIP.build()
        .index(index)
        .config(config)
        .basecaller(args.basecaller)
        .align(args.align)
        .build()
    )
    engine = DatasetEngine(system.pipeline, workers=args.workers, batch_size=args.batch_size)
    report = engine.run(dataset)

    # The run block records only result-determining parameters, so the
    # smoke diff across worker counts stays byte-identical.
    run_args = {
        "profile": profile.name,
        "scale": args.scale,
        "seed": args.seed,
        "max_read_length": args.max_read_length,
        "basecaller": args.basecaller,
        "preset": args.preset,
        "variant": args.variant,
        "chunk_size": args.chunk_size,
        "align": args.align,
    }
    if args.json_path:
        payload = report_to_json(report, run_args)
        if args.json_path == "-":
            sys.stdout.write(payload)
        else:
            try:
                with open(args.json_path, "w", encoding="utf-8") as handle:
                    handle.write(payload)
            except OSError as exc:
                print(f"error: cannot write {args.json_path}: {exc}", file=sys.stderr)
                return 1

    if not args.quiet:
        stats = engine.last_stats
        print(
            f"{profile.name}: {report.n_reads} reads, {report.total_bases:,} bases | "
            f"mapped {report.mapped_ratio:.1%}, QSR {report.qsr_rejection_ratio:.1%}, "
            f"CMR {report.cmr_rejection_ratio:.1%}, "
            f"basecall savings {report.basecall_savings:.1%} | "
            f"{stats.mode} x{stats.workers} (batch {stats.batch_size}): "
            f"{stats.elapsed_s:.2f}s, {stats.reads_per_sec:.1f} reads/s",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
