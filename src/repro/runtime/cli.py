"""``python -m repro.runtime``: scriptable dataset-scale GenPIP runs.

Builds the index, executes the pipeline through the streaming
:class:`~repro.runtime.engine.DatasetEngine`, and writes a
deterministic JSON report. Reads come from a selectable **source**
(``--source``): a materialised in-memory dataset, a lazy simulator
generator, an on-disk read container streamed incrementally, or an
on-disk **raw-signal** container decoded signal-natively by a
signal-space basecaller (``--store``; containers are written on first
use). Outcomes go to a selectable **sink** (``--sink``): the in-memory
report, an incremental JSONL file, or a columnar Parquet file
(``--outcomes``), both keeping parent memory at O(batch).

The JSON report intentionally contains no timing, worker, or streaming
information -- a serial in-memory run and an ``N``-worker
generator-source JSONL-sink run of the same dataset must serialize to
byte-identical files, which is exactly what the CI smoke jobs diff
(with a streaming sink the report is replayed losslessly from the
outcome file).

Examples
--------
Serial run, report to stdout::

    python -m repro.runtime --profile ecoli-like --scale 0.001 --json -

Two workers, length-aware batching, streaming JSONL sink::

    python -m repro.runtime --profile ecoli-like --scale 0.001 \\
        --workers 2 --adaptive-batching --sink jsonl --outcomes out.jsonl

Per-read stage tracing (Chrome ``trace_event`` JSON for Perfetto plus a
flat span JSONL; the report stays byte-identical to an untraced run)::

    python -m repro.runtime --profile ecoli-like --scale 0.001 \\
        --workers 2 --trace run.trace.json

Stream from an on-disk read container (written on first use)::

    python -m repro.runtime --source store --store reads.gprd --workers 2

Signal-native run: decode stored raw current end to end (the container
is synthesized and written on first use; keep signal-space backends to
tiny scales -- they decode real signal)::

    python -m repro.runtime --source signals --store signals.rsig \\
        --basecaller viterbi --scale 0.0002 --max-read-length 1500

Fully raw signal: the container is written *without* base-start tracks
(the real FAST5/SLOW5 shape), every read's chunk grid is recovered by
event segmentation, and junk is rejected in signal space before any
basecalling::

    python -m repro.runtime --source signals --store raw.rsig \\
        --basecaller viterbi --scale 0.0002 --max-read-length 1500 \\
        --segmentation --signal-er

Any registered basecaller backend and pipeline preset plugs in::

    python -m repro.runtime --basecaller viterbi --preset ecoli \\
        --scale 0.0002 --max-read-length 1500
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.core.config import VARIANTS, variant_config
from repro.core.genpip import GenPIP, GenPIPReport
from repro.core.pipeline import ReadOutcome
from repro.core.registry import (
    basecaller_names,
    create_basecaller,
    preset_config,
    preset_names,
)
from repro.mapping.index import MinimizerIndex
from repro.nanopore.datasets import (
    PRESETS,
    generate_dataset,
    iter_dataset_reads,
    profile_reference,
    small_profile,
)
from repro.nanopore.signal_store import (
    strip_base_starts,
    write_read_store,
    write_signals,
)
from repro.obs.export import write_chrome_trace, write_span_jsonl
from repro.runtime.engine import TRANSPORTS, DatasetEngine
from repro.runtime.sink import (
    JSONLSink,
    NullSink,
    ParquetSink,
    replay_parquet_report,
    replay_report,
)
from repro.runtime.source import SignalStoreSource, SimulatorSource, StoreSource
from repro.signal import SegmentationConfig, SignalRejectionPolicy

SOURCES = ("memory", "generator", "store", "signals")
SINKS = ("memory", "jsonl", "parquet", "null")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Run the GenPIP pipeline over a generated dataset preset.",
    )
    data = parser.add_argument_group("dataset")
    data.add_argument(
        "--profile", choices=sorted(PRESETS), default="ecoli-like",
        help="dataset preset (Table 1 recipe)",
    )
    data.add_argument(
        "--scale", type=float, default=0.001,
        help="fraction of the real dataset's read count to generate",
    )
    data.add_argument("--seed", type=int, default=42, help="simulation seed")
    data.add_argument(
        "--max-read-length", type=int, default=None, metavar="BASES",
        help="cap read lengths via the small-profile transform (fast smoke runs)",
    )
    data.add_argument(
        "--source", choices=SOURCES, default="memory",
        help="where reads come from: materialised dataset, lazy simulator "
        "generator, an on-disk read container streamed incrementally, or an "
        "on-disk raw-signal container decoded signal-natively (requires a "
        "signal-space --basecaller)",
    )
    data.add_argument(
        "--store", default=None, metavar="PATH",
        help="container path for --source store/signals (generated and "
        "written on first use if missing)",
    )
    pipe = parser.add_argument_group("pipeline")
    pipe.add_argument(
        "--basecaller", choices=basecaller_names(), default="surrogate",
        help="basecaller backend from the registry",
    )
    pipe.add_argument(
        "--preset", choices=preset_names(), default=None, metavar="NAME",
        help="pipeline preset (e.g. ecoli, human); default: the profile's Sec. 6.3 parameters",
    )
    pipe.add_argument(
        "--variant", choices=VARIANTS, default="full_er",
        help="early-rejection variant of the evaluation",
    )
    pipe.add_argument("--chunk-size", type=int, default=300, help="bases per chunk")
    pipe.add_argument(
        "--align", action="store_true",
        help="run base-level alignment (slower; off by default like the sweeps)",
    )
    signal = parser.add_argument_group("signal domain (requires --source signals)")
    signal.add_argument(
        "--signal-er", action="store_true",
        help="signal-domain early rejection: screen each read's raw-current "
        "prefix against reference templates (subsequence DTW) and reject "
        "junk before any basecalling",
    )
    signal.add_argument(
        "--signal-er-threshold", type=float, default=0.17, metavar="COST",
        help="sDTW accept threshold (per-sample cost) of the SER screen",
    )
    signal.add_argument(
        "--signal-er-templates", type=int, default=6, metavar="N",
        help="reference segments sampled evenly as SER templates (a sparse "
        "screen: acceptances are reliable, rejections include genomic reads "
        "the templates do not cover)",
    )
    signal.add_argument(
        "--segmentation", action="store_true",
        help="write the raw-signal container without base-start tracks "
        "(FAST5/SLOW5-shaped: samples only) and recover every read's chunk "
        "grid by event segmentation",
    )
    run = parser.add_argument_group("runtime")
    run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: GENPIP_WORKERS env or serial)",
    )
    run.add_argument(
        "--batch-size", type=int, default=None, metavar="READS",
        help="reads per work unit (default: auto)",
    )
    run.add_argument(
        "--adaptive-batching", action="store_true",
        help="balance work units by total bases instead of read count "
        "(kills the long-read shard tail; identical results)",
    )
    run.add_argument(
        "--transport", choices=TRANSPORTS, default="auto",
        help="how pooled read payloads travel: shared memory (shm copies "
        "arrays out worker-side; shm-view hands workers zero-copy views "
        "under a segment lease), pickle, or auto (shm with pickle fallback)",
    )
    out = parser.add_argument_group("output")
    out.add_argument(
        "--sink", choices=SINKS, default="memory",
        help="outcome sink: in-memory report, incremental JSONL, columnar "
        "Parquet, or null (count and discard, for throughput measurement). "
        "The streaming sinks keep O(batch) parent memory and require "
        "--outcomes; parquet needs the optional pyarrow dependency",
    )
    out.add_argument(
        "--outcomes", default=None, metavar="PATH",
        help="file the jsonl/parquet sink streams outcomes to",
    )
    out.add_argument(
        "--json", dest="json_path", default=None, metavar="PATH",
        help="write the JSON report to PATH ('-' for stdout); with a "
        "streaming sink the report is replayed losslessly from --outcomes",
    )
    out.add_argument(
        "--trace", dest="trace_path", default=None, metavar="PATH",
        help="record per-read stage spans and write a Chrome trace_event "
        "JSON to PATH (load it in Perfetto / chrome://tracing) plus a flat "
        "span log to PATH.spans.jsonl; the report stays byte-identical to "
        "an untraced run",
    )
    out.add_argument("--quiet", action="store_true", help="suppress the stderr summary")
    return parser


def _mapping_record(outcome: ReadOutcome) -> dict | None:
    mapping = outcome.mapping
    if mapping is None:
        return None
    return {
        "mapped": mapping.mapped,
        "ref_start": mapping.ref_start,
        "ref_end": mapping.ref_end,
        "strand": mapping.strand,
        "chain_score": mapping.chain_score,
        "mapq": mapping.mapq,
        "identity": mapping.identity,
    }


def _ser_record(outcome: ReadOutcome) -> dict | None:
    return None if outcome.ser is None else dataclasses.asdict(outcome.ser)


def _read_record(outcome: ReadOutcome) -> dict:
    record = {
        "read_id": outcome.read_id,
        "status": outcome.status.value,
        "read_length": outcome.read_length,
        "n_chunks_total": outcome.n_chunks_total,
        "n_chunks_basecalled": outcome.n_chunks_basecalled,
        "n_bases_basecalled": outcome.n_bases_basecalled,
        "n_chunks_seeded": outcome.n_chunks_seeded,
        "n_chain_invocations": outcome.n_chain_invocations,
        "aligned": outcome.aligned,
        "mean_quality": outcome.mean_quality,
        "mapping": _mapping_record(outcome),
    }
    # Emitted only for screened reads, so SER-less reports keep the
    # exact byte layout of earlier releases.
    ser = _ser_record(outcome)
    if ser is not None:
        record["ser"] = ser
    return record


def report_to_json(report: GenPIPReport, run_args: dict) -> str:
    """Serialize a report deterministically (sorted keys, no timing).

    Signal-domain keys (the summary's ``ser_rejection_ratio``, each
    read's ``ser`` record) appear only in runs that enabled SER, so
    SER-less reports stay byte-identical to earlier releases.
    """
    counters = report.counters
    document = {
        "run": run_args,
        "summary": {
            "n_reads": report.n_reads,
            "total_bases": report.total_bases,
            "total_chunks": report.total_chunks,
            "chunks_basecalled": report.chunks_basecalled,
            "bases_basecalled": report.bases_basecalled,
            "chunks_seeded": report.chunks_seeded,
            "reads_aligned": report.reads_aligned,
            "basecall_savings": report.basecall_savings,
            "mapped_ratio": report.mapped_ratio,
            "qsr_rejection_ratio": report.qsr_rejection_ratio,
            "cmr_rejection_ratio": report.cmr_rejection_ratio,
            "mean_identity": report.mean_identity(),
            "status_counts": {
                status.value: count for status, count in counters.status_counts.items()
            },
        },
        "reads": [_read_record(outcome) for outcome in report.outcomes],
    }
    if run_args.get("signal_er"):
        document["summary"]["ser_rejection_ratio"] = report.ser_rejection_ratio
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def _ensure_container(parser, store_path: Path, provenance: dict, kind: str, write) -> None:
    """Write a container on first use, guarded by a provenance sidecar.

    The container itself stores reads/signals, not the flags that
    generated them (or the reference they map against), so reusing one
    under different dataset flags would silently mix records with the
    wrong reference/index and mislabel the report's run block. Refuse
    mismatches instead. The unknown-provenance note names every flag
    the sidecar would have checked, so a signal container warns about
    ``--basecaller`` too (stored current is backend-specific).
    """
    flags = ", ".join(f"--{key.replace('_', '-')}" for key in provenance)
    meta_path = store_path.with_name(store_path.name + ".meta.json")
    if store_path.exists():
        if meta_path.exists():
            recorded = json.loads(meta_path.read_text(encoding="utf-8"))
            if recorded != provenance:
                parser.error(
                    f"{kind} container {store_path} was generated with {recorded}, "
                    f"but this run requests {provenance}; rerun with matching "
                    "flags or delete the container to regenerate it"
                )
        else:
            print(
                f"note: reusing {kind} container {store_path} of unknown "
                f"provenance -- its records must match this run's {flags} "
                "(reference/index are built from the flags, not the file)",
                file=sys.stderr,
            )
        return
    # Sidecar first: an interrupt between the two writes then leaves
    # sidecar-without-container, and the next run simply regenerates
    # both -- never a container whose provenance check silently
    # degrades to a note.
    meta_path.write_text(json.dumps(provenance, sort_keys=True) + "\n", encoding="utf-8")
    write()


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.scale <= 0:
        parser.error("--scale must be positive")
    if args.workers is not None and args.workers < 0:
        parser.error("--workers must be non-negative")
    if args.batch_size is not None and args.batch_size < 1:
        parser.error("--batch-size must be at least 1")
    if args.chunk_size < 50:
        parser.error("--chunk-size must be at least 50 bases")
    if args.source in ("store", "signals") and not args.store:
        parser.error(f"--source {args.source} requires --store PATH")
    if args.store and args.source not in ("store", "signals"):
        parser.error("--store only makes sense with --source store or signals")
    if args.sink in ("jsonl", "parquet") and not args.outcomes:
        parser.error(f"--sink {args.sink} requires --outcomes PATH")
    if args.outcomes and args.sink not in ("jsonl", "parquet"):
        parser.error("--outcomes only makes sense with --sink jsonl or parquet")
    if args.sink == "null" and args.json_path:
        parser.error("--sink null discards outcomes; it cannot produce a --json report")
    if args.source != "signals":
        if args.signal_er:
            parser.error("--signal-er only applies to --source signals runs")
        if args.segmentation:
            parser.error("--segmentation only applies to --source signals runs")
    if args.signal_er_threshold <= 0:
        parser.error("--signal-er-threshold must be positive")
    if args.signal_er_templates < 1:
        parser.error("--signal-er-templates must be at least 1")

    # Construct the sink before any expensive setup (index build,
    # container synthesis): a missing optional pyarrow dependency must
    # fail fast, not after minutes of dataset generation.
    if args.sink == "jsonl":
        sink = JSONLSink(args.outcomes)
    elif args.sink == "parquet":
        try:
            sink = ParquetSink(args.outcomes)
        except ImportError as exc:
            parser.error(str(exc))
    else:
        sink = NullSink() if args.sink == "null" else None

    profile = PRESETS[args.profile]
    if args.max_read_length is not None:
        profile = small_profile(profile, max_read_length=args.max_read_length)
    # The reference is deterministic in the profile, so every source
    # sees the exact dataset generate_dataset would materialise.
    reference = profile_reference(profile)
    index = MinimizerIndex.build(reference)
    # The registry's profile-name aliases carry each dataset's Sec. 6.3
    # parameters, so the profile default and --preset share one source.
    base_config = preset_config(args.preset or args.profile)
    config = variant_config(base_config.with_chunk_size(args.chunk_size), args.variant)

    # The engine is constructed once, up front, so the SER policy can be
    # derived from its pore model; the builder then receives the live
    # instance (equivalent to building by name -- the registry recovers
    # name + config for worker shipping either way).
    basecaller = create_basecaller(args.basecaller)
    builder = (
        GenPIP.build()
        .index(index)
        .config(config)
        .basecaller(basecaller)
        .align(args.align)
    )
    if args.signal_er:
        pore_model = getattr(basecaller, "pore_model", None)
        if pore_model is None:
            parser.error(
                f"--signal-er needs a basecaller with a pore model to build "
                f"expected-signal templates; backend {args.basecaller!r} has none"
            )
        # Deterministic in (reference, pore model, flags): serial and
        # pooled runs rebuild byte-identical template sets.
        builder = builder.signal_rejection(
            SignalRejectionPolicy.from_reference(
                pore_model,
                reference.codes,
                n_templates=args.signal_er_templates,
                threshold=args.signal_er_threshold,
            )
        )
    system = builder.build()

    if args.source == "memory":
        data = generate_dataset(profile, scale=args.scale, seed=args.seed, reference=reference)
    elif args.source == "generator":
        data = SimulatorSource(profile, scale=args.scale, seed=args.seed, reference=reference)
    elif args.source == "store":
        store_path = Path(args.store)
        provenance = {
            "profile": args.profile,
            "scale": args.scale,
            "seed": args.seed,
            "max_read_length": args.max_read_length,
        }
        _ensure_container(
            parser,
            store_path,
            provenance,
            "read",
            lambda: write_read_store(
                store_path,
                iter_dataset_reads(
                    profile, scale=args.scale, seed=args.seed, reference=reference
                ),
            ),
        )
        data = StoreSource(store_path)
    else:  # signals
        if not getattr(basecaller, "accepts_signal_reads", False):
            parser.error(
                f"--source signals requires a signal-space basecaller "
                f"(e.g. viterbi, dnn), not {args.basecaller!r}"
            )
        store_path = Path(args.store)
        # accepts_signal_reads is the protocol capability; signal_records
        # (container synthesis) is not, so a third-party signal-native
        # backend can decode an existing container but cannot write one.
        if not store_path.exists() and not hasattr(basecaller, "signal_records"):
            parser.error(
                f"--source signals needs an existing container at {store_path}: "
                f"backend {args.basecaller!r} decodes signal natively but does "
                "not synthesize containers (no signal_records()); provide a "
                "container written by a synthesis-capable backend"
            )
        # The synthesized current depends on the backend's pore model
        # and signal parameters, so the backend is part of a signal
        # container's provenance.
        provenance = {
            "profile": args.profile,
            "scale": args.scale,
            "seed": args.seed,
            "max_read_length": args.max_read_length,
            "basecaller": args.basecaller,
        }
        if args.segmentation:
            # A segmentation container holds *only* samples (the real
            # FAST5/SLOW5 shape) -- structurally different data, so it
            # is part of the provenance. The key is added only here so
            # pre-existing grid-carrying containers keep matching.
            provenance["segmentation"] = True

        def _write_signal_container() -> None:
            records = basecaller.signal_records(
                iter_dataset_reads(
                    profile, scale=args.scale, seed=args.seed, reference=reference
                )
            )
            if args.segmentation:
                records = strip_base_starts(records)
            write_signals(store_path, records)

        _ensure_container(
            parser, store_path, provenance, "raw-signal", _write_signal_container
        )
        data = SignalStoreSource(
            store_path,
            segmentation=SegmentationConfig() if args.segmentation else None,
        )

    engine = DatasetEngine(
        system.pipeline,
        workers=args.workers,
        batch_size=args.batch_size,
        sink=sink,
        batching="length-aware" if args.adaptive_batching else "fixed",
        transport=args.transport,
        trace=args.trace_path is not None,
    )
    report = engine.run(data)
    if args.trace_path:
        traces = engine.last_trace or []
        try:
            write_chrome_trace(args.trace_path, traces)
            write_span_jsonl(args.trace_path + ".spans.jsonl", traces)
        except OSError as exc:
            print(f"error: cannot write {args.trace_path}: {exc}", file=sys.stderr)
            return 1
        if not args.quiet:
            n_reads = sum(1 for trace in traces if trace.kind == "read")
            print(
                f"trace: {len(traces)} traces ({n_reads} reads) -> "
                f"{args.trace_path} (+ .spans.jsonl)",
                file=sys.stderr,
            )
    if args.json_path and args.sink in ("jsonl", "parquet"):
        # The run kept O(batch) outcomes in memory; the per-read records
        # are replayed losslessly from disk only because the full JSON
        # report needs them (the stderr summary is counters-only).
        replay = replay_report if args.sink == "jsonl" else replay_parquet_report
        report = replay(args.outcomes, report.config)

    # The run block records only result-determining parameters, so the
    # smoke diff across worker counts / sources / sinks stays
    # byte-identical.
    run_args = {
        "profile": profile.name,
        "scale": args.scale,
        "seed": args.seed,
        "max_read_length": args.max_read_length,
        "basecaller": args.basecaller,
        "preset": args.preset,
        "variant": args.variant,
        "chunk_size": args.chunk_size,
        "align": args.align,
    }
    if args.source == "signals":
        # Signal-native decoding IS result-determining (quantised stored
        # current, modelled-position chunk grid), unlike the read-based
        # sources, which all yield the identical dataset. The key is
        # added only here so read-based reports stay byte-identical to
        # earlier releases -- and the same goes for the segmentation
        # and SER keys (both result-determining: the recovered grid and
        # the template set shape every downstream number).
        run_args["signal_native"] = True
        if args.segmentation:
            run_args["segmentation"] = True
        if args.signal_er:
            run_args["signal_er"] = {
                "templates": args.signal_er_templates,
                "threshold": args.signal_er_threshold,
            }
    if args.json_path:
        payload = report_to_json(report, run_args)
        if args.json_path == "-":
            sys.stdout.write(payload)
        else:
            try:
                with open(args.json_path, "w", encoding="utf-8") as handle:
                    handle.write(payload)
            except OSError as exc:
                print(f"error: cannot write {args.json_path}: {exc}", file=sys.stderr)
                return 1

    if not args.quiet:
        stats = engine.last_stats
        backpressure = ""
        # Gate on the window, not the mode: a broken-pool run resumes
        # serially but keeps the pooled phase's backpressure figures --
        # the post-mortem case these metrics exist for.
        if stats.inflight_window > 0:
            backpressure = (
                f", prefetch {stats.prefetch_peak}/{stats.prefetch_capacity}"
                f", window {stats.inflight_peak}/{stats.inflight_window}"
            )
        # Signal-domain rejects are reported separately from QSR/CMR:
        # they cost zero basecalled chunks, which is the whole point.
        ser_summary = f"SER {report.ser_rejection_ratio:.1%}, " if stats.signal_er else ""
        print(
            f"{profile.name}: {report.n_reads} reads, {report.total_bases:,} bases | "
            f"mapped {report.mapped_ratio:.1%}, {ser_summary}"
            f"QSR {report.qsr_rejection_ratio:.1%}, "
            f"CMR {report.cmr_rejection_ratio:.1%}, "
            f"basecall savings {report.basecall_savings:.1%} | "
            f"{stats.mode} x{stats.workers} "
            f"(batch {stats.batch_size}, {stats.batching}, "
            f"source {args.source}, sink {args.sink}, transport {stats.transport}"
            f"{backpressure}): "
            f"{stats.elapsed_s:.2f}s, {stats.reads_per_sec:.1f} reads/s"
            + (
                f", {stats.bytes_copied_per_read:,.0f} B copied/read"
                if stats.transport != "none"
                else ""
            ),
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
