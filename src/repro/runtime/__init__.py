"""Dataset-scale execution runtime: a streaming, sharded dataflow.

GenPIP's reads are independent, so dataset throughput is an execution
and *data-movement* problem, not an algorithmic one. This package
supplies the execution layer as a streaming dataflow:

* :mod:`repro.runtime.source` -- :class:`ReadSource` implementations
  (in-memory sequence, lazy simulator generator, incremental on-disk
  read store, and the signal-native :class:`SignalStoreSource` that
  streams stored raw current straight into a signal-space basecaller)
  plus the :class:`Prefetcher` producer thread that overlaps input
  with execution;
* :mod:`repro.runtime.sharding` -- streaming work-unit planning with
  fixed or length-aware (base-balanced) batching;
* :mod:`repro.runtime.spec` -- :class:`PipelineSpec`, the picklable
  per-worker pipeline factory;
* :mod:`repro.runtime.columnar` -- the single columnar batch layout
  (:class:`ColumnarLayout` / :class:`ColumnarBatch`) shared by the
  transport, the kernel plane, and the sinks: planned once, packed
  once, viewed everywhere else;
* :mod:`repro.runtime.transport` -- shared-memory publication of read
  and signal payloads plus the minimizer index (workers receive
  handles, not pickles); ``attach_unit(copy=False)`` plus
  :class:`~repro.runtime.transport.SegmentLease` form the zero-copy
  plane (transport ``"shm-view"``);
* :mod:`repro.runtime.merge` -- :class:`ShardCollector`, the
  order-preserving streaming merge that releases the completed prefix;
* :mod:`repro.runtime.sink` -- :class:`ReportSink` consumers of that
  prefix (in-memory report, incremental JSONL with lossless replay,
  columnar Parquet behind an optional pyarrow gate);
* :mod:`repro.runtime.engine` -- :class:`DatasetEngine`, the
  process-pool executor with bounded in-flight submission and a
  resuming serial fallback;
* :mod:`repro.runtime.cli` -- the ``python -m repro.runtime`` entry
  point for scriptable (CI) runs.

The load-bearing invariant, asserted by ``tests/test_runtime.py`` and
``tests/test_runtime_streaming.py``: for any worker count and any
source x sink x batching x transport combination, the merged result is
identical to the sequential run's -- same outcomes, same order, same
counters.
"""

from repro.runtime.columnar import ColumnarBatch, ColumnarLayout
from repro.runtime.engine import TRANSPORTS, DatasetEngine, RuntimeStats, run_dataset
from repro.runtime.merge import ShardCollector, ShardResult
from repro.runtime.sharding import (
    BATCHING_MODES,
    WORKERS_ENV_VAR,
    WorkUnit,
    iter_work,
    plan_work,
    resolve_batch_size,
    resolve_workers,
)
from repro.runtime.sink import (
    JSONLSink,
    MemorySink,
    NullSink,
    ParquetSink,
    ReportSink,
    iter_outcomes_jsonl,
    iter_outcomes_parquet,
    outcome_from_record,
    outcome_to_record,
    replay_parquet_report,
    replay_report,
)
from repro.runtime.source import (
    IterableSource,
    Prefetcher,
    ReadSource,
    SequenceSource,
    SignalStoreSource,
    SimulatorSource,
    StoreSource,
    as_read_source,
)
from repro.runtime.spec import PipelineSpec
from repro.runtime.transport import (
    SegmentLease,
    SharedIndexHandle,
    active_segments,
    attach_index,
    publish_index,
    release_all,
    worker_leases,
)

__all__ = [
    "BATCHING_MODES",
    "ColumnarBatch",
    "ColumnarLayout",
    "DatasetEngine",
    "IterableSource",
    "JSONLSink",
    "MemorySink",
    "NullSink",
    "ParquetSink",
    "PipelineSpec",
    "Prefetcher",
    "ReadSource",
    "ReportSink",
    "RuntimeStats",
    "SegmentLease",
    "SequenceSource",
    "ShardCollector",
    "ShardResult",
    "SharedIndexHandle",
    "SignalStoreSource",
    "SimulatorSource",
    "StoreSource",
    "TRANSPORTS",
    "WORKERS_ENV_VAR",
    "WorkUnit",
    "active_segments",
    "as_read_source",
    "attach_index",
    "iter_outcomes_jsonl",
    "iter_outcomes_parquet",
    "iter_work",
    "outcome_from_record",
    "outcome_to_record",
    "plan_work",
    "publish_index",
    "release_all",
    "replay_parquet_report",
    "replay_report",
    "resolve_batch_size",
    "resolve_workers",
    "run_dataset",
    "worker_leases",
]
