"""Dataset-scale execution runtime: sharded, parallel pipeline runs.

GenPIP's reads are independent, so dataset throughput is an execution
problem, not an algorithmic one. This package supplies the execution
layer:

* :mod:`repro.runtime.spec` -- :class:`PipelineSpec`, the picklable
  per-worker pipeline factory;
* :mod:`repro.runtime.sharding` -- read batching into ordered
  :class:`WorkUnit`\\ s;
* :mod:`repro.runtime.merge` -- :class:`ShardCollector`, the
  order-preserving streaming merge of shard results;
* :mod:`repro.runtime.engine` -- :class:`DatasetEngine`, the
  process-pool executor with a zero-dependency serial fallback;
* :mod:`repro.runtime.cli` -- the ``python -m repro.runtime`` entry
  point for scriptable (CI) runs.

The load-bearing invariant, asserted by ``tests/test_runtime.py``: for
any worker count and batch size, the merged report is identical to the
sequential run's -- same outcomes, same order, same counters.
"""

from repro.runtime.engine import DatasetEngine, RuntimeStats, run_dataset
from repro.runtime.merge import ShardCollector, ShardResult
from repro.runtime.sharding import (
    WORKERS_ENV_VAR,
    WorkUnit,
    plan_work,
    resolve_batch_size,
    resolve_workers,
)
from repro.runtime.spec import PipelineSpec

__all__ = [
    "DatasetEngine",
    "PipelineSpec",
    "RuntimeStats",
    "ShardCollector",
    "ShardResult",
    "WORKERS_ENV_VAR",
    "WorkUnit",
    "plan_work",
    "resolve_batch_size",
    "resolve_workers",
    "run_dataset",
]
