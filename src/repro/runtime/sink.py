"""Report sinks: where a dataset-scale run's outcomes go.

The pre-streaming runtime held every :class:`ReadOutcome` in the parent
until the end of the run -- at dataset scale that is exactly the
useless-data retention GenPIP's movement analysis warns about. A
:class:`ReportSink` consumes the *ordered prefix* of outcomes as the
merge layer (:meth:`~repro.runtime.merge.ShardCollector.drain`) releases
it, so the parent's peak outcome retention is O(batch):

* :class:`MemorySink` -- accumulates outcomes and finishes into a full
  :class:`~repro.core.genpip.GenPIPReport` (the classic behaviour);
* :class:`JSONLSink` -- appends one deterministic JSON line per outcome
  to a file as the prefix grows, keeping nothing in memory; the
  finished report carries counters only, and :func:`replay_report`
  reconstructs the *exact* in-memory report from the file
  (``tests/test_runtime_streaming.py`` asserts equality).
* :class:`ParquetSink` -- the columnar sibling for analytics-scale
  outcome files: scalar fields as native Arrow columns, nested
  QSR/CMR/mapping records as JSON-encoded nullable strings, written in
  row groups as the prefix grows. Outcomes accumulate directly into
  per-column buffers, and each flush assembles Arrow arrays zero-copy
  with ``pa.Array.from_buffers`` over those buffers -- no per-record
  Python dicts, no ``from_pydict`` boxing. Requires the optional
  ``pyarrow`` dependency (install ``genpip-repro[parquet]``);
  construction raises a clear ``ImportError`` without it, and
  :func:`replay_parquet_report` round-trips losslessly like the JSONL
  path.
* :class:`NullSink` -- counts and discards outcomes, so throughput
  lanes can measure the data plane itself with zero serialisation cost.

Outcome serialisation is lossless: every field of
:class:`~repro.core.pipeline.ReadOutcome` -- including the nested
QSR/CMR decisions, mapping result, and alignment CIGAR -- round-trips
through :func:`outcome_to_record` / :func:`outcome_from_record`
(finite floats round-trip exactly through JSON's repr-based encoding).
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Sequence
from dataclasses import asdict
from pathlib import Path
from typing import IO, Protocol, runtime_checkable

import numpy as np

from repro.core.config import GenPIPConfig
from repro.core.early_rejection import CMRDecision, QSRDecision
from repro.core.genpip import GenPIPReport, ReportCounters
from repro.core.pipeline import ReadOutcome, ReadStatus
from repro.mapping.alignment import AlignmentResult
from repro.mapping.mapper import MappingResult
from repro.signal.rejection import SERDecision


@runtime_checkable
class ReportSink(Protocol):
    """Structural protocol for outcome consumers.

    The engine calls ``begin`` once per run, ``emit`` with each newly
    completed ordered prefix (possibly empty between calls), then
    exactly one of ``finish`` (success; the collector's exact merged
    counters) or ``abort`` (failure; release resources, keep partial
    output for post-mortems).
    """

    def begin(self, config: GenPIPConfig) -> None: ...  # pragma: no cover - protocol

    def emit(self, outcomes: Sequence[ReadOutcome]) -> None: ...  # pragma: no cover - protocol

    def finish(self, counters: ReportCounters) -> GenPIPReport: ...  # pragma: no cover - protocol

    def abort(self) -> None: ...  # pragma: no cover - protocol


class MemorySink:
    """Accumulates outcomes in memory into a full report (the default)."""

    def __init__(self) -> None:
        self._config: GenPIPConfig | None = None
        self._outcomes: list[ReadOutcome] = []

    def begin(self, config: GenPIPConfig) -> None:
        self._config = config
        self._outcomes = []

    def emit(self, outcomes: Sequence[ReadOutcome]) -> None:
        self._outcomes.extend(outcomes)

    def finish(self, counters: ReportCounters) -> GenPIPReport:
        if self._config is None:
            raise RuntimeError("sink finished before begin()")
        return GenPIPReport(outcomes=self._outcomes, config=self._config, counters=counters)

    def abort(self) -> None:
        self._outcomes = []


class NullSink:
    """Counts and discards outcomes: the data plane without serialisation.

    The throughput-measurement sink (``--sink null``): a lane that pairs
    it with any source and transport measures read ingest, payload
    movement, kernel execution, and the ordered merge with zero
    serialisation or I/O noise. ``n_emitted`` / ``n_batches`` expose
    what flowed through; the finished report carries the collector's
    exact counters and no outcomes.
    """

    def __init__(self) -> None:
        self._config: GenPIPConfig | None = None
        self.n_emitted = 0
        self.n_batches = 0

    def begin(self, config: GenPIPConfig) -> None:
        self._config = config
        self.n_emitted = 0
        self.n_batches = 0

    def emit(self, outcomes: Sequence[ReadOutcome]) -> None:
        if outcomes:
            self.n_batches += 1
            self.n_emitted += len(outcomes)

    def finish(self, counters: ReportCounters) -> GenPIPReport:
        if self._config is None:
            raise RuntimeError("sink finished before begin()")
        return GenPIPReport(outcomes=[], config=self._config, counters=counters)

    def abort(self) -> None:
        return None


class JSONLSink:
    """Streams outcomes to a JSONL file; parent retention is O(batch).

    One deterministic JSON line per outcome (sorted keys, compact
    separators) in dataset order. The finished report has an empty
    ``outcomes`` list but exact counters; :func:`replay_report` rebuilds
    the full report from the file when the per-read records are needed.
    On ``abort`` the partially written file is closed and left on disk.
    """

    def __init__(self, path):
        self._path = Path(path)
        self._handle: IO[str] | None = None
        self._config: GenPIPConfig | None = None

    @property
    def path(self) -> Path:
        return self._path

    def begin(self, config: GenPIPConfig) -> None:
        self._close()
        self._config = config
        # The handle outlives this call by design (incremental sink,
        # closed in finalize/_close), so no `with` block applies.
        self._handle = open(self._path, "w", encoding="utf-8")  # noqa: SIM115

    def emit(self, outcomes: Sequence[ReadOutcome]) -> None:
        if self._handle is None:
            raise RuntimeError("sink emitted to before begin()")
        for outcome in outcomes:
            self._handle.write(outcome_to_json(outcome))
            self._handle.write("\n")

    def finish(self, counters: ReportCounters) -> GenPIPReport:
        if self._config is None:
            raise RuntimeError("sink finished before begin()")
        self._close()
        return GenPIPReport(outcomes=[], config=self._config, counters=counters)

    def abort(self) -> None:
        self._close()

    def _close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _require_pyarrow():
    """Import pyarrow or fail with an actionable message."""
    try:
        import pyarrow
        import pyarrow.parquet
    except ImportError as exc:  # pragma: no cover - exercised when pyarrow absent
        raise ImportError(
            "the parquet sink requires pyarrow (pip install 'genpip-repro[parquet]'); "
            "use the jsonl sink on installations without it"
        ) from exc
    return pyarrow, pyarrow.parquet


#: The single source of truth for the Parquet layout: column name ->
#: logical kind. Scalar kinds map to native Arrow types; ``"json"``
#: columns hold the same JSON encodings the JSONL sink writes (nested
#: qsr/cmr/mapping records) as nullable strings. The schema and both
#: row (de)serialisers all derive from this mapping.
_PARQUET_COLUMNS = (
    ("read_id", "string"),
    ("status", "string"),
    ("read_length", "int64"),
    ("n_chunks_total", "int64"),
    ("n_chunks_basecalled", "int64"),
    ("n_bases_basecalled", "int64"),
    ("n_chunks_seeded", "int64"),
    ("n_chain_invocations", "int64"),
    ("aligned", "bool"),
    ("mean_quality", "float64"),
    ("ser", "json"),
    ("qsr", "json"),
    ("cmr", "json"),
    ("mapping", "json"),
)
_PARQUET_JSON_FIELDS = tuple(name for name, kind in _PARQUET_COLUMNS if kind == "json")


def _validity_buffer(pa, mask: np.ndarray):
    """(validity buffer, null_count) for a boolean presence mask.

    Arrow validity bitmaps are LSB-ordered bits; an all-present column
    carries no bitmap at all (``None`` buffer, zero nulls).
    """
    null_count = int(mask.size - np.count_nonzero(mask))
    if null_count == 0:
        return None, 0
    return pa.py_buffer(np.packbits(mask, bitorder="little")), null_count


def _scalar_column(pa, kind: str, values: list):
    """One Arrow array built zero-copy over numpy buffers.

    ``int64`` columns are non-null by construction; ``bool`` values are
    bit-packed (Arrow's layout); ``float64`` is nullable
    (``mean_quality`` of never-basecalled reads).
    """
    n = len(values)
    if kind == "int64":
        data = np.asarray(values, dtype=np.int64)
        return pa.Array.from_buffers(pa.int64(), n, [None, pa.py_buffer(data)])
    if kind == "bool":
        bits = np.packbits(np.asarray(values, dtype=bool), bitorder="little")
        return pa.Array.from_buffers(pa.bool_(), n, [None, pa.py_buffer(bits)])
    mask = np.fromiter((v is not None for v in values), dtype=bool, count=n)
    data = np.array([0.0 if v is None else v for v in values], dtype=np.float64)
    validity, null_count = _validity_buffer(pa, mask)
    return pa.Array.from_buffers(
        pa.float64(), n, [validity, pa.py_buffer(data)], null_count=null_count
    )


def _string_column(pa, values: list):
    """A (nullable) utf8 Arrow array from int32 offsets + one data buffer.

    Offsets repeat at a null (that row spans zero data bytes); the
    validity bitmap marks it absent rather than empty.
    """
    n = len(values)
    offsets = np.zeros(n + 1, dtype=np.int32)
    mask = np.ones(n, dtype=bool)
    chunks: list[bytes] = []
    position = 0
    for i, value in enumerate(values):
        if value is None:
            mask[i] = False
        else:
            encoded = value.encode("utf-8")
            chunks.append(encoded)
            position += len(encoded)
        offsets[i + 1] = position
    validity, null_count = _validity_buffer(pa, mask)
    return pa.Array.from_buffers(
        pa.string(),
        n,
        [validity, pa.py_buffer(offsets), pa.py_buffer(b"".join(chunks))],
        null_count=null_count,
    )


class ParquetSink:
    """Streams outcomes to a columnar Parquet file (optional pyarrow).

    Outcomes accumulate **per column** (no per-record dicts) into row
    groups of ``batch_rows`` and are flushed incrementally through a
    ``pyarrow.parquet.ParquetWriter``, so parent retention stays
    O(batch_rows). Each flush assembles the Arrow table zero-copy:
    every array is built with ``pa.Array.from_buffers`` over numpy /
    bytes buffers (``pa.py_buffer``), never through ``from_pydict``
    boxing. Serialisation is lossless: scalar fields are native
    columns, the nested QSR/CMR/mapping records are the same JSON
    encodings the JSONL sink writes, and :func:`replay_parquet_report`
    reconstructs the exact in-memory report. On ``abort`` the partially
    written file is closed and left on disk.
    """

    def __init__(self, path, batch_rows: int = 1024):
        if batch_rows < 1:
            raise ValueError("batch_rows must be positive")
        self._pa, self._pq = _require_pyarrow()
        self._path = Path(path)
        self._batch_rows = batch_rows
        arrow_types = {
            "string": self._pa.string(),
            "int64": self._pa.int64(),
            "bool": self._pa.bool_(),
            "float64": self._pa.float64(),
            "json": self._pa.string(),
        }
        self._schema = self._pa.schema(
            [self._pa.field(name, arrow_types[kind]) for name, kind in _PARQUET_COLUMNS]
        )
        self._writer = None
        self._columns: dict[str, list] = {}
        self._rows = 0
        self._config: GenPIPConfig | None = None

    @property
    def path(self) -> Path:
        return self._path

    def begin(self, config: GenPIPConfig) -> None:
        self._close()
        self._config = config
        self._reset_columns()
        self._writer = self._pq.ParquetWriter(self._path, self._schema)

    def _reset_columns(self) -> None:
        self._columns = {name: [] for name, _ in _PARQUET_COLUMNS}
        self._rows = 0

    def emit(self, outcomes: Sequence[ReadOutcome]) -> None:
        if self._writer is None:
            raise RuntimeError("sink emitted to before begin()")
        for outcome in outcomes:
            record = outcome_to_record(outcome)
            for name, kind in _PARQUET_COLUMNS:
                # "ser" is present in records only for signal-ER runs
                # (keeping pre-SER JSONL byte-identical); the column is
                # simply null elsewhere.
                value = record.get(name)
                if kind == "json" and value is not None:
                    value = json.dumps(value, sort_keys=True, separators=(",", ":"))
                self._columns[name].append(value)
            self._rows += 1
        if self._rows >= self._batch_rows:
            self._flush()

    def finish(self, counters: ReportCounters) -> GenPIPReport:
        if self._config is None:
            raise RuntimeError("sink finished before begin()")
        self._flush()
        self._close()
        return GenPIPReport(outcomes=[], config=self._config, counters=counters)

    def abort(self) -> None:
        self._close()

    def _flush(self) -> None:
        if not self._rows or self._writer is None:
            return
        pa = self._pa
        arrays = []
        for name, kind in _PARQUET_COLUMNS:
            values = self._columns[name]
            if kind in ("string", "json"):
                arrays.append(_string_column(pa, values))
            else:
                arrays.append(_scalar_column(pa, kind, values))
        self._writer.write_table(
            pa.Table.from_arrays(arrays, schema=self._schema)
        )
        self._reset_columns()

    def _close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._reset_columns()


def iter_outcomes_parquet(path) -> Iterator[ReadOutcome]:
    """Stream outcomes back from a Parquet sink file, row group at a time."""
    _, pq = _require_pyarrow()
    parquet_file = pq.ParquetFile(path)
    try:
        for group in range(parquet_file.num_row_groups):
            for row in parquet_file.read_row_group(group).to_pylist():
                record = dict(row)
                for name in _PARQUET_JSON_FIELDS:
                    record[name] = None if row[name] is None else json.loads(row[name])
                yield outcome_from_record(record)
    finally:
        parquet_file.close()


def replay_parquet_report(path, config: GenPIPConfig) -> GenPIPReport:
    """Reconstruct the full in-memory report from a Parquet sink file.

    Like :func:`replay_report`, the result equals the report a
    :class:`MemorySink` run would have returned.
    """
    return GenPIPReport(outcomes=list(iter_outcomes_parquet(path)), config=config)


# --- lossless outcome (de)serialisation ------------------------------------


def outcome_to_record(outcome: ReadOutcome) -> dict:
    """A JSON-safe dict capturing *every* field of an outcome.

    The ``ser`` key is emitted only when a signal-domain rejection
    decision exists: SER-less runs (every run before the stage existed,
    and every run with it disabled) therefore serialize byte-identically
    to earlier releases, and old outcome files replay unchanged.
    """
    qsr = outcome.qsr
    cmr = outcome.cmr
    mapping = outcome.mapping
    record = {
        "read_id": outcome.read_id,
        "status": outcome.status.value,
        "read_length": outcome.read_length,
        "n_chunks_total": outcome.n_chunks_total,
        "n_chunks_basecalled": outcome.n_chunks_basecalled,
        "n_bases_basecalled": outcome.n_bases_basecalled,
        "n_chunks_seeded": outcome.n_chunks_seeded,
        "n_chain_invocations": outcome.n_chain_invocations,
        "aligned": outcome.aligned,
        "mean_quality": outcome.mean_quality,
        "qsr": None
        if qsr is None
        else {
            "reject": qsr.reject,
            "average_quality": qsr.average_quality,
            "sampled_indices": list(qsr.sampled_indices),
        },
        "cmr": None
        if cmr is None
        else {
            "reject": cmr.reject,
            "chain_score": cmr.chain_score,
            "merged_bases": cmr.merged_bases,
            "threshold": cmr.threshold,
        },
        "mapping": None
        if mapping is None
        else {
            "read_id": mapping.read_id,
            "mapped": mapping.mapped,
            "ref_start": mapping.ref_start,
            "ref_end": mapping.ref_end,
            "strand": mapping.strand,
            "chain_score": mapping.chain_score,
            "mapq": mapping.mapq,
            "alignment": None
            if mapping.alignment is None
            else {
                "score": mapping.alignment.score,
                "cigar": [[op, n] for op, n in mapping.alignment.cigar],
            },
        },
    }
    if outcome.ser is not None:
        # SERDecision is a flat dataclass of JSON-safe scalars, so its
        # wire shape derives from the type -- one source of truth with
        # the SERDecision(**ser) reconstruction below.
        record["ser"] = asdict(outcome.ser)
    return record


def outcome_from_record(record: dict) -> ReadOutcome:
    """Inverse of :func:`outcome_to_record` (exact reconstruction)."""
    ser = record.get("ser")
    qsr = record["qsr"]
    cmr = record["cmr"]
    mapping = record["mapping"]
    alignment = None
    if mapping is not None and mapping["alignment"] is not None:
        alignment = AlignmentResult(
            score=mapping["alignment"]["score"],
            cigar=tuple((op, n) for op, n in mapping["alignment"]["cigar"]),
        )
    return ReadOutcome(
        read_id=record["read_id"],
        status=ReadStatus(record["status"]),
        read_length=record["read_length"],
        n_chunks_total=record["n_chunks_total"],
        n_chunks_basecalled=record["n_chunks_basecalled"],
        n_bases_basecalled=record["n_bases_basecalled"],
        n_chunks_seeded=record["n_chunks_seeded"],
        n_chain_invocations=record["n_chain_invocations"],
        aligned=record["aligned"],
        mean_quality=record["mean_quality"],
        ser=None if ser is None else SERDecision(**ser),
        qsr=None
        if qsr is None
        else QSRDecision(
            reject=qsr["reject"],
            average_quality=qsr["average_quality"],
            sampled_indices=tuple(qsr["sampled_indices"]),
        ),
        cmr=None
        if cmr is None
        else CMRDecision(
            reject=cmr["reject"],
            chain_score=cmr["chain_score"],
            merged_bases=cmr["merged_bases"],
            threshold=cmr["threshold"],
        ),
        mapping=None
        if mapping is None
        else MappingResult(
            read_id=mapping["read_id"],
            mapped=mapping["mapped"],
            ref_start=mapping["ref_start"],
            ref_end=mapping["ref_end"],
            strand=mapping["strand"],
            chain_score=mapping["chain_score"],
            alignment=alignment,
            mapq=mapping["mapq"],
        ),
    )


def outcome_to_json(outcome: ReadOutcome) -> str:
    """One deterministic JSON line for an outcome (no trailing newline)."""
    return json.dumps(outcome_to_record(outcome), sort_keys=True, separators=(",", ":"))


def iter_outcomes_jsonl(path) -> Iterator[ReadOutcome]:
    """Stream outcomes back from a JSONL sink file, one at a time."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield outcome_from_record(json.loads(line))


def replay_report(path, config: GenPIPConfig) -> GenPIPReport:
    """Reconstruct the full in-memory report from a JSONL sink file.

    The result is *equal* (dataclass equality, outcome for outcome) to
    the :class:`GenPIPReport` a :class:`MemorySink` run would have
    returned -- serialisation is lossless and order is preserved.
    """
    return GenPIPReport(outcomes=list(iter_outcomes_jsonl(path)), config=config)
