"""Entry point for ``python -m repro.runtime``."""

import sys

from repro.runtime.cli import main

if __name__ == "__main__":
    sys.exit(main())
