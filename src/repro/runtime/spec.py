"""Picklable pipeline factory for worker processes.

A :class:`GenPIPPipeline` is cheap to *build* but expensive to *ship*:
what dominates its pickled size is the minimizer index, which every
worker needs anyway. :class:`PipelineSpec` captures exactly the
constructor arguments of the pipeline, travels to each worker once (via
the pool initializer), and rebuilds an identical pipeline there -- so
per-task messages carry only work-unit payloads and outcomes, never
engine state (and with the shared-memory transport of
:mod:`repro.runtime.transport`, not even read payloads -- just
handles).

The index travels one of two ways: as the
:class:`~repro.mapping.index.MinimizerIndex` itself (pickled through
the initializer args), or -- when the engine published it via
:func:`~repro.runtime.transport.publish_index` -- as a
:class:`~repro.runtime.transport.SharedIndexHandle`, a ~100-byte
name-plus-counts handle each worker attaches and rebuilds from shared
memory. :meth:`resolve_index` hides the difference from :meth:`build`.

The basecaller travels as a
:class:`~repro.core.registry.BasecallerRef` whenever the pipeline's
engine is a registered backend: the registry name plus its construction
config round-trips through pickle and rebuilds an identical engine in
the worker (every built-in backend is deterministic in its config).
Unregistered engines travel as the instance itself, which therefore
must be picklable. Either way the spec works under both ``fork`` and
``spawn`` start methods -- ``tests/test_runtime.py`` rebuilds a
non-surrogate spec in a fresh interpreter and asserts identical
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.backends import (
    Basecaller,
    CMRPolicyProtocol,
    QSRPolicyProtocol,
    SignalRejectionPolicyProtocol,
)
from repro.core.config import GenPIPConfig
from repro.core.pipeline import GenPIPPipeline
from repro.core.registry import BasecallerRef, basecaller_registration
from repro.mapping.index import MinimizerIndex
from repro.mapping.mapper import MapperConfig
from repro.runtime.transport import SharedIndexHandle, attach_index


@dataclass(frozen=True)
class PipelineSpec:
    """Everything needed to reconstruct a :class:`GenPIPPipeline`.

    All fields are plain dataclasses / numpy containers (or registered
    backends' refs / shared-memory handles), so the spec is picklable
    under both ``fork`` and ``spawn`` start methods.
    """

    index: MinimizerIndex | SharedIndexHandle
    config: GenPIPConfig
    basecaller: BasecallerRef | Basecaller
    mapper_config: MapperConfig
    align: bool = True
    qsr_policy: QSRPolicyProtocol | None = None
    cmr_policy: CMRPolicyProtocol | None = None
    ser_policy: SignalRejectionPolicyProtocol | None = None
    #: Enable span tracing in the process that builds from this spec:
    #: pool initializers call ``repro.obs.trace.enable_tracing()``
    #: before the first work unit, so worker-side traces exist for the
    #: engine to ship home. Not a pipeline constructor argument -- the
    #: pipeline reads the process tracer per read.
    trace: bool = False

    @classmethod
    def from_pipeline(cls, pipeline: GenPIPPipeline) -> "PipelineSpec":
        """Capture an existing pipeline's construction arguments.

        Registered engines are captured as a :class:`BasecallerRef`
        (name + config); unregistered ones are carried as the instance.
        The rejection policies -- QSR/CMR and the optional signal-domain
        (SER) policy -- are carried as instances: the defaults are tiny
        threshold holders (the SER default adds its expected-signal
        templates, still a few KB), and custom policies need only be
        picklable, the same contract as a custom basecaller.
        """
        basecaller = BasecallerRef.capture(pipeline.basecaller) or pipeline.basecaller
        return cls(
            index=pipeline.index,
            config=pipeline.config,
            basecaller=basecaller,
            mapper_config=pipeline.mapper_config,
            align=pipeline.align,
            qsr_policy=pipeline.qsr_policy,
            cmr_policy=pipeline.cmr_policy,
            ser_policy=pipeline.ser_policy,
        )

    def with_index(self, index: MinimizerIndex | SharedIndexHandle) -> "PipelineSpec":
        """A copy of the spec carrying ``index`` instead (e.g. a
        shared-memory handle the engine just published)."""
        return replace(self, index=index)

    def with_trace(self, trace: bool = True) -> "PipelineSpec":
        """A copy of the spec with worker-side span tracing toggled."""
        return replace(self, trace=trace)

    def resolve_index(self) -> MinimizerIndex:
        """The index instance (attaching the shared segment if needed)."""
        if isinstance(self.index, SharedIndexHandle):
            return attach_index(self.index)
        return self.index

    def resolve_basecaller(self) -> Basecaller:
        """The engine instance (building it from the ref if needed)."""
        if isinstance(self.basecaller, BasecallerRef):
            return self.basecaller.build()
        return self.basecaller

    def accepts_signal_reads(self) -> bool:
        """Whether the configured engine decodes signal-native reads.

        Answered without building the engine: for a registry ref the
        capability is a class attribute of the registered backend type;
        for an instance it is read off the instance.
        """
        if isinstance(self.basecaller, BasecallerRef):
            registration = basecaller_registration(self.basecaller.name)
            return bool(getattr(registration.instance_type, "accepts_signal_reads", False))
        return bool(getattr(self.basecaller, "accepts_signal_reads", False))

    def signal_rejection_enabled(self) -> bool:
        """Whether the rebuilt pipeline will run the SER stage."""
        return self.ser_policy is not None and self.config.enable_ser

    def build(self) -> GenPIPPipeline:
        """Reconstruct the pipeline (called once per worker process)."""
        return GenPIPPipeline(
            self.resolve_index(),
            self.resolve_basecaller(),
            self.config,
            self.mapper_config,
            align=self.align,
            qsr_policy=self.qsr_policy,
            cmr_policy=self.cmr_policy,
            ser_policy=self.ser_policy,
        )
