"""Picklable pipeline factory for worker processes.

A :class:`GenPIPPipeline` is cheap to *build* but expensive to *ship*:
what dominates its pickled size is the minimizer index, which every
worker needs anyway. :class:`PipelineSpec` captures exactly the
constructor arguments of the pipeline, travels to each worker once (via
the pool initializer), and rebuilds an identical pipeline there -- so
per-task messages carry only reads and outcomes, never engine state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.basecalling.surrogate import SurrogateBasecaller
from repro.core.config import GenPIPConfig
from repro.core.pipeline import GenPIPPipeline
from repro.mapping.index import MinimizerIndex
from repro.mapping.mapper import MapperConfig


@dataclass(frozen=True)
class PipelineSpec:
    """Everything needed to reconstruct a :class:`GenPIPPipeline`.

    All fields are plain dataclasses / numpy containers, so the spec is
    picklable under both ``fork`` and ``spawn`` start methods.
    """

    index: MinimizerIndex
    config: GenPIPConfig
    basecaller: SurrogateBasecaller
    mapper_config: MapperConfig
    align: bool = True

    @classmethod
    def from_pipeline(cls, pipeline: GenPIPPipeline) -> "PipelineSpec":
        """Capture an existing pipeline's construction arguments."""
        return cls(
            index=pipeline.index,
            config=pipeline.config,
            basecaller=pipeline.basecaller,
            mapper_config=pipeline.mapper_config,
            align=pipeline.align,
        )

    def build(self) -> GenPIPPipeline:
        """Reconstruct the pipeline (called once per worker process)."""
        return GenPIPPipeline(
            self.index,
            self.basecaller,
            self.config,
            self.mapper_config,
            align=self.align,
        )
