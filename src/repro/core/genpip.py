"""The GenPIP system facade and its dataset-level report.

:class:`GenPIP` wires a reference index, a basecaller, and a
:class:`~repro.core.config.GenPIPConfig` into the chunk pipeline and
processes whole datasets. The resulting :class:`GenPIPReport` carries
the per-read outcomes plus the aggregate counters that the performance
model (:mod:`repro.perf`) and the experiments consume: how many chunks
were actually basecalled / seeded, how many reads each ER stage
rejected, and -- with ground truth from the simulator -- the rejection
and false-negative ratios of Figs. 12/13.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.basecalling.surrogate import SurrogateBasecaller
from repro.core.config import GenPIPConfig
from repro.core.pipeline import GenPIPPipeline, ReadOutcome, ReadStatus
from repro.mapping.index import MinimizerIndex
from repro.mapping.mapper import MapperConfig
from repro.nanopore.datasets import Dataset


@dataclass(frozen=True)
class GenPIPReport:
    """Aggregate results of processing one dataset.

    Attributes
    ----------
    outcomes:
        Per-read terminal records, in dataset order.
    config:
        The pipeline configuration that produced them.
    """

    outcomes: list[ReadOutcome]
    config: GenPIPConfig

    def __len__(self) -> int:
        return len(self.outcomes)

    def count(self, status: ReadStatus) -> int:
        return sum(o.status is status for o in self.outcomes)

    @property
    def n_reads(self) -> int:
        return len(self.outcomes)

    @property
    def qsr_rejection_ratio(self) -> float:
        """Reads rejected by QSR over all reads (Fig. 12a metric)."""
        return self.count(ReadStatus.REJECTED_QSR) / max(self.n_reads, 1)

    @property
    def cmr_rejection_ratio(self) -> float:
        """Reads rejected by CMR over all reads (Fig. 13a metric)."""
        return self.count(ReadStatus.REJECTED_CMR) / max(self.n_reads, 1)

    @property
    def mapped_ratio(self) -> float:
        return self.count(ReadStatus.MAPPED) / max(self.n_reads, 1)

    @property
    def total_chunks(self) -> int:
        return sum(o.n_chunks_total for o in self.outcomes)

    @property
    def chunks_basecalled(self) -> int:
        return sum(o.n_chunks_basecalled for o in self.outcomes)

    @property
    def bases_basecalled(self) -> int:
        return sum(o.n_bases_basecalled for o in self.outcomes)

    @property
    def total_bases(self) -> int:
        return sum(o.read_length for o in self.outcomes)

    @property
    def chunks_seeded(self) -> int:
        return sum(o.n_chunks_seeded for o in self.outcomes)

    @property
    def reads_aligned(self) -> int:
        return sum(o.aligned for o in self.outcomes)

    @property
    def basecall_savings(self) -> float:
        """Fraction of chunk-basecalling work ER eliminated."""
        total = self.total_chunks
        return 1.0 - self.chunks_basecalled / total if total else 0.0

    def mean_identity(self) -> float:
        """Mean alignment identity over mapped reads."""
        identities = [
            o.mapping.identity
            for o in self.outcomes
            if o.mapping is not None and o.mapping.mapped
        ]
        return float(np.mean(identities)) if identities else 0.0


class GenPIP:
    """End-to-end GenPIP system over a dataset.

    Parameters
    ----------
    index:
        Prebuilt reference minimizer index (the offline indexing phase).
    config:
        Pipeline parameters; defaults to the paper's E. coli preset.
    basecaller / mapper_config:
        Engine overrides for experiments.
    """

    def __init__(
        self,
        index: MinimizerIndex,
        config: GenPIPConfig | None = None,
        basecaller: SurrogateBasecaller | None = None,
        mapper_config: MapperConfig | None = None,
        align: bool = True,
    ):
        self._config = config or GenPIPConfig()
        self._pipeline = GenPIPPipeline(
            index, basecaller, self._config, mapper_config, align=align
        )

    @property
    def pipeline(self) -> GenPIPPipeline:
        return self._pipeline

    @property
    def config(self) -> GenPIPConfig:
        return self._config

    def process_read(self, read) -> ReadOutcome:
        """Run one read through the pipeline."""
        return self._pipeline.process_read(read)

    def run(self, dataset: Dataset) -> GenPIPReport:
        """Process every read of a dataset."""
        outcomes = [self._pipeline.process_read(read) for read in dataset.reads]
        return GenPIPReport(outcomes=outcomes, config=self._config)
