"""The GenPIP system facade and its dataset-level report.

:class:`GenPIP` wires a reference index, a basecaller, and a
:class:`~repro.core.config.GenPIPConfig` into the chunk pipeline and
processes whole datasets. The resulting :class:`GenPIPReport` carries
the per-read outcomes plus the aggregate counters that the performance
model (:mod:`repro.perf`) and the experiments consume: how many chunks
were actually basecalled / seeded, how many reads each ER stage
rejected, and -- with ground truth from the simulator -- the rejection
and false-negative ratios of Figs. 12/13.

Aggregate counters are accumulated incrementally in
:class:`ReportCounters` (one pass at construction, exact integer sums),
so shard-level reports produced by the parallel runtime
(:mod:`repro.runtime`) combine via :meth:`GenPIPReport.merge` without
re-walking every outcome.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.builder import PipelineBuilder

from repro.core.backends import (
    Basecaller,
    CMRPolicyProtocol,
    QSRPolicyProtocol,
    SignalRejectionPolicyProtocol,
)
from repro.core.config import GenPIPConfig
from repro.core.pipeline import GenPIPPipeline, ReadOutcome, ReadStatus
from repro.mapping.index import MinimizerIndex
from repro.mapping.mapper import MapperConfig
from repro.nanopore.datasets import Dataset


@dataclass
class ReportCounters:
    """Exact integer aggregates over a set of read outcomes.

    All fields are integer sums, so combining shard counters is
    associative and lossless: a merged report's counters are identical
    to the counters a sequential run would have produced.
    """

    n_reads: int = 0
    total_chunks: int = 0
    chunks_basecalled: int = 0
    bases_basecalled: int = 0
    total_bases: int = 0
    chunks_seeded: int = 0
    reads_aligned: int = 0
    status_counts: dict[ReadStatus, int] = field(default_factory=dict)

    def add(self, outcome: ReadOutcome) -> None:
        """Fold one outcome into the running totals."""
        self.n_reads += 1
        self.total_chunks += outcome.n_chunks_total
        self.chunks_basecalled += outcome.n_chunks_basecalled
        self.bases_basecalled += outcome.n_bases_basecalled
        self.total_bases += outcome.read_length
        self.chunks_seeded += outcome.n_chunks_seeded
        self.reads_aligned += int(outcome.aligned)
        self.status_counts[outcome.status] = self.status_counts.get(outcome.status, 0) + 1

    def combine(self, other: "ReportCounters") -> "ReportCounters":
        """Elementwise sum with another counter set (shard merge)."""
        status_counts = dict(self.status_counts)
        for status, count in other.status_counts.items():
            status_counts[status] = status_counts.get(status, 0) + count
        return ReportCounters(
            n_reads=self.n_reads + other.n_reads,
            total_chunks=self.total_chunks + other.total_chunks,
            chunks_basecalled=self.chunks_basecalled + other.chunks_basecalled,
            bases_basecalled=self.bases_basecalled + other.bases_basecalled,
            total_bases=self.total_bases + other.total_bases,
            chunks_seeded=self.chunks_seeded + other.chunks_seeded,
            reads_aligned=self.reads_aligned + other.reads_aligned,
            status_counts=status_counts,
        )

    @classmethod
    def from_outcomes(cls, outcomes: Iterable[ReadOutcome]) -> "ReportCounters":
        counters = cls()
        for outcome in outcomes:
            counters.add(outcome)
        return counters


@dataclass(frozen=True)
class GenPIPReport:
    """Aggregate results of processing one dataset.

    Attributes
    ----------
    outcomes:
        Per-read terminal records, in dataset order.
    config:
        The pipeline configuration that produced them.
    counters:
        Incremental integer aggregates; computed from ``outcomes`` when
        not supplied (shard merges supply pre-summed counters).
    """

    outcomes: list[ReadOutcome]
    config: GenPIPConfig
    counters: ReportCounters | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.counters is None:
            object.__setattr__(self, "counters", ReportCounters.from_outcomes(self.outcomes))

    def __len__(self) -> int:
        return len(self.outcomes)

    def count(self, status: ReadStatus) -> int:
        return self.counters.status_counts.get(status, 0)

    @classmethod
    def merge(
        cls,
        reports: Sequence["GenPIPReport"],
        config: GenPIPConfig | None = None,
    ) -> "GenPIPReport":
        """Concatenate shard reports in the given (shard) order.

        Outcome order is the concatenation order, and counters are the
        exact sums of the shard counters -- no outcome is re-walked. An
        empty ``reports`` needs an explicit ``config``.
        """
        reports = list(reports)
        if config is None:
            if not reports:
                raise ValueError("merging zero reports requires an explicit config")
            config = reports[0].config
        if any(report.config != config for report in reports):
            raise ValueError("cannot merge reports produced by different configs")
        outcomes: list[ReadOutcome] = []
        counters = ReportCounters()
        for report in reports:
            outcomes.extend(report.outcomes)
            counters = counters.combine(report.counters)
        return cls(outcomes=outcomes, config=config, counters=counters)

    @property
    def n_reads(self) -> int:
        return self.counters.n_reads

    @property
    def qsr_rejection_ratio(self) -> float:
        """Reads rejected by QSR over all reads (Fig. 12a metric)."""
        return self.count(ReadStatus.REJECTED_QSR) / max(self.n_reads, 1)

    @property
    def cmr_rejection_ratio(self) -> float:
        """Reads rejected by CMR over all reads (Fig. 13a metric)."""
        return self.count(ReadStatus.REJECTED_CMR) / max(self.n_reads, 1)

    @property
    def ser_rejection_ratio(self) -> float:
        """Reads rejected in signal space, before any basecalling."""
        return self.count(ReadStatus.REJECTED_SIGNAL) / max(self.n_reads, 1)

    @property
    def mapped_ratio(self) -> float:
        return self.count(ReadStatus.MAPPED) / max(self.n_reads, 1)

    @property
    def total_chunks(self) -> int:
        return self.counters.total_chunks

    @property
    def chunks_basecalled(self) -> int:
        return self.counters.chunks_basecalled

    @property
    def bases_basecalled(self) -> int:
        return self.counters.bases_basecalled

    @property
    def total_bases(self) -> int:
        return self.counters.total_bases

    @property
    def chunks_seeded(self) -> int:
        return self.counters.chunks_seeded

    @property
    def reads_aligned(self) -> int:
        return self.counters.reads_aligned

    @property
    def basecall_savings(self) -> float:
        """Fraction of chunk-basecalling work ER eliminated."""
        total = self.total_chunks
        return 1.0 - self.chunks_basecalled / total if total else 0.0

    def mean_identity(self) -> float:
        """Mean alignment identity over mapped reads."""
        identities = [
            o.mapping.identity
            for o in self.outcomes
            if o.mapping is not None and o.mapping.mapped
        ]
        return float(np.mean(identities)) if identities else 0.0


class GenPIP:
    """End-to-end GenPIP system over a dataset.

    Parameters
    ----------
    index:
        Prebuilt reference minimizer index (the offline indexing phase).
    config:
        Pipeline parameters; defaults to the paper's E. coli preset.
    basecaller / mapper_config / qsr_policy / cmr_policy / ser_policy:
        Engine overrides, typed against the :mod:`repro.core.backends`
        protocols; any registered backend (``"surrogate"``,
        ``"viterbi"``, ``"dnn"``) or conforming object plugs in.
        ``ser_policy`` adds the pre-basecalling signal-domain rejection
        stage for signal-native reads (no default: without a policy the
        stage does not exist).

    For fluent construction -- registry-name backends, presets, ER
    variants -- use :meth:`GenPIP.build`.
    """

    def __init__(
        self,
        index: MinimizerIndex,
        config: GenPIPConfig | None = None,
        basecaller: Basecaller | None = None,
        mapper_config: MapperConfig | None = None,
        align: bool = True,
        qsr_policy: QSRPolicyProtocol | None = None,
        cmr_policy: CMRPolicyProtocol | None = None,
        ser_policy: SignalRejectionPolicyProtocol | None = None,
    ):
        self._config = config or GenPIPConfig()
        self._pipeline = GenPIPPipeline(
            index,
            basecaller,
            self._config,
            mapper_config,
            align=align,
            qsr_policy=qsr_policy,
            cmr_policy=cmr_policy,
            ser_policy=ser_policy,
        )

    @classmethod
    def build(cls) -> "PipelineBuilder":
        """Start a fluent builder chain::

            GenPIP.build().index(ix).basecaller("viterbi").preset("ecoli").build()

        The default chain (no overrides) constructs through the same
        path as ``GenPIP(ix)`` and yields byte-identical reports.
        """
        from repro.core.builder import PipelineBuilder

        return PipelineBuilder()

    @property
    def pipeline(self) -> GenPIPPipeline:
        return self._pipeline

    @property
    def config(self) -> GenPIPConfig:
        return self._config

    def process_read(self, read) -> ReadOutcome:
        """Run one read (base-space or signal-native) through the pipeline."""
        return self._pipeline.process_read(read)

    def run(
        self,
        dataset: Dataset,
        *,
        workers: int | None = None,
        batch_size: int | None = None,
        sink=None,
        adaptive_batching: bool = False,
        transport: str = "auto",
    ) -> GenPIPReport:
        """Process every read of a dataset (or any read source).

        Parameters
        ----------
        dataset:
            A :class:`Dataset`, a sequence of reads, or any streaming
            :class:`~repro.runtime.source.ReadSource` (lazy simulator,
            on-disk read store, ...). Signal-native sources
            (:class:`~repro.runtime.source.SignalStoreSource`, yielding
            stored raw current instead of simulated reads) require a
            signal-space basecaller (``"viterbi"`` / ``"dnn"``); the
            engine rejects the combination up front otherwise.
        workers:
            Worker processes to shard the reads across. ``None`` defers
            to the ``GENPIP_WORKERS`` environment variable (default 1);
            ``0``/``1`` run serially in-process. Reads are independent,
            so any worker count produces a report identical to the
            serial run (outcomes, order, and counters).
        batch_size:
            Reads per work unit handed to a worker (amortises IPC);
            ``None`` picks a size from the dataset and worker count.
        sink:
            Where outcomes stream as the ordered prefix completes; a
            :class:`~repro.runtime.sink.ReportSink`. ``None`` keeps the
            classic behaviour (full in-memory report). With a streaming
            sink (e.g. :class:`~repro.runtime.sink.JSONLSink`), the
            returned report carries exact counters but no per-read
            outcomes -- those live wherever the sink put them -- and
            parent memory stays O(batch).
        adaptive_batching:
            Balance work units by total bases instead of read count
            (kills the long-read tail; same outcomes, same order).
        transport:
            How pooled read payloads travel: ``"auto"`` (shared memory
            when available), ``"shm"``, or ``"pickle"``.
        """
        from repro.runtime.engine import DatasetEngine

        engine = DatasetEngine(
            self._pipeline,
            workers=workers,
            batch_size=batch_size,
            sink=sink,
            batching="length-aware" if adaptive_batching else "fixed",
            transport=transport,
        )
        return engine.run(dataset)
