"""GenPIP's core contribution: the chunk-based pipeline and early rejection.

This package implements the paper's Sections 3 and 4 at the functional
level (the hardware cost models live in :mod:`repro.hardware` /
:mod:`repro.perf`):

* :mod:`repro.core.config` -- :class:`GenPIPConfig` with the paper's
  parameters (chunk size, ``N_qs``/``theta_qs``, ``N_cm``/``theta_cm``)
  and per-dataset presets (E. coli: ``N_qs=2, N_cm=5``; human:
  ``N_qs=5, N_cm=3``; Sec. 6.3).
* :mod:`repro.core.early_rejection` -- QSR (Algorithm 1) and CMR.
* :mod:`repro.core.pipeline` -- the chunk-based pipeline: basecall ->
  CQS -> seed -> chain per chunk, with ER interleaved, then final
  chaining + alignment; plus the conventional pipeline for comparison.
* :mod:`repro.core.genpip` -- the :class:`GenPIP` system facade and the
  dataset-level report consumed by the performance model and the
  experiments.
* :mod:`repro.core.backends` -- the structural engine protocols
  (:class:`Basecaller`, :class:`QSRPolicyProtocol`,
  :class:`CMRPolicyProtocol`) the pipeline is typed against.
* :mod:`repro.core.registry` -- named basecaller backends
  (``"surrogate"``, ``"viterbi"``, ``"dnn"``) and pipeline presets
  (``"ecoli"``, ``"human"``), plus the picklable
  :class:`BasecallerRef` that ships an engine choice to workers.
* :mod:`repro.core.builder` -- :class:`PipelineBuilder`, the fluent
  ``GenPIP.build()...`` construction API.
"""

from repro.core.backends import (
    Basecaller,
    CMRPolicyProtocol,
    QSRPolicyProtocol,
    SignalRejectionPolicyProtocol,
)
from repro.core.builder import PipelineBuilder
from repro.core.config import (
    ECOLI_PARAMS,
    HUMAN_PARAMS,
    VARIANTS,
    GenPIPConfig,
    variant_config,
)
from repro.core.controller import AQSCalculator, ControllerTrace
from repro.core.early_rejection import (
    CMRPolicy,
    QSRPolicy,
    qsr_sample_indices,
)
from repro.core.genpip import GenPIP, GenPIPReport
from repro.core.pipeline import (
    ConventionalPipeline,
    GenPIPPipeline,
    ReadOutcome,
    ReadStatus,
)
from repro.core.registry import (
    BackendRegistration,
    BasecallerRef,
    basecaller_names,
    create_basecaller,
    preset_config,
    preset_names,
    register_basecaller,
    register_preset,
)

__all__ = [
    "AQSCalculator",
    "ControllerTrace",
    "GenPIPConfig",
    "ECOLI_PARAMS",
    "HUMAN_PARAMS",
    "VARIANTS",
    "variant_config",
    "Basecaller",
    "QSRPolicyProtocol",
    "CMRPolicyProtocol",
    "SignalRejectionPolicyProtocol",
    "QSRPolicy",
    "CMRPolicy",
    "qsr_sample_indices",
    "GenPIPPipeline",
    "ConventionalPipeline",
    "ReadOutcome",
    "ReadStatus",
    "GenPIP",
    "GenPIPReport",
    "PipelineBuilder",
    "BackendRegistration",
    "BasecallerRef",
    "basecaller_names",
    "create_basecaller",
    "preset_config",
    "preset_names",
    "register_basecaller",
    "register_preset",
]
