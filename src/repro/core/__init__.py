"""GenPIP's core contribution: the chunk-based pipeline and early rejection.

This package implements the paper's Sections 3 and 4 at the functional
level (the hardware cost models live in :mod:`repro.hardware` /
:mod:`repro.perf`):

* :mod:`repro.core.config` -- :class:`GenPIPConfig` with the paper's
  parameters (chunk size, ``N_qs``/``theta_qs``, ``N_cm``/``theta_cm``)
  and per-dataset presets (E. coli: ``N_qs=2, N_cm=5``; human:
  ``N_qs=5, N_cm=3``; Sec. 6.3).
* :mod:`repro.core.early_rejection` -- QSR (Algorithm 1) and CMR.
* :mod:`repro.core.pipeline` -- the chunk-based pipeline: basecall ->
  CQS -> seed -> chain per chunk, with ER interleaved, then final
  chaining + alignment; plus the conventional pipeline for comparison.
* :mod:`repro.core.genpip` -- the :class:`GenPIP` system facade and the
  dataset-level report consumed by the performance model and the
  experiments.
"""

from repro.core.config import ECOLI_PARAMS, HUMAN_PARAMS, GenPIPConfig
from repro.core.early_rejection import (
    CMRPolicy,
    QSRPolicy,
    qsr_sample_indices,
)
from repro.core.pipeline import (
    ConventionalPipeline,
    GenPIPPipeline,
    ReadOutcome,
    ReadStatus,
)
from repro.core.genpip import GenPIP, GenPIPReport
from repro.core.controller import AQSCalculator, ControllerTrace

__all__ = [
    "AQSCalculator",
    "ControllerTrace",
    "GenPIPConfig",
    "ECOLI_PARAMS",
    "HUMAN_PARAMS",
    "QSRPolicy",
    "CMRPolicy",
    "qsr_sample_indices",
    "GenPIPPipeline",
    "ConventionalPipeline",
    "ReadOutcome",
    "ReadStatus",
    "GenPIP",
    "GenPIPReport",
]
