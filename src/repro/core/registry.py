"""Named registry of basecaller backends and pipeline presets.

The registry is what lets an engine choice travel as *data*: a
:class:`BasecallerRef` (registry name + construction config) is a tiny
picklable value that rebuilds an identical engine anywhere -- in a
builder chain, in a worker process primed by
:class:`~repro.runtime.spec.PipelineSpec`, or in a fresh interpreter
under the ``spawn`` start method. Shipping the name instead of the
instance keeps per-worker initialisation payloads small and makes the
CLI's ``--basecaller`` flag and the builder's ``.basecaller("viterbi")``
the same operation.

Built-in backends: ``"surrogate"``, ``"viterbi"``, ``"dnn"``.
Built-in presets: ``"ecoli"`` / ``"human"`` (Sec. 6.3 parameters; the
dataset-profile spellings ``"ecoli-like"`` / ``"human-like"`` are
accepted as aliases), plus ``"default"``.

Third-party engines register with :func:`register_basecaller`, or --
without importing this repo's internals at all -- by shipping an
``importlib.metadata`` entry point in the :data:`ENTRY_POINT_GROUP`
group whose target is a :class:`BackendRegistration` (or a zero-arg
callable returning one). Entry points are discovered lazily on the
first registry lookup, so merely importing :mod:`repro` never scans
installed distributions. Anything registered either way is
constructable by name everywhere a built-in is.
"""

from __future__ import annotations

import importlib.metadata
import warnings
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.basecalling.engines import (
    DNNBackendConfig,
    DNNChunkBasecaller,
    ViterbiBackendConfig,
    ViterbiChunkBasecaller,
)
from repro.basecalling.surrogate import SurrogateBasecaller, SurrogateConfig
from repro.core.backends import Basecaller
from repro.core.config import ECOLI_PARAMS, HUMAN_PARAMS, GenPIPConfig


@dataclass(frozen=True)
class BackendRegistration:
    """One named basecaller backend.

    Attributes
    ----------
    name:
        Registry key (lowercase identifier).
    factory:
        ``factory(config | None) -> Basecaller``; ``None`` builds the
        backend's defaults.
    instance_type:
        Exact engine type produced by ``factory`` (used to recognise
        instances when capturing a :class:`BasecallerRef`).
    config_type:
        Type of the accepted construction config, or ``None`` when the
        backend takes no config.
    capture:
        ``capture(instance) -> config``: extract the construction
        config from a live instance so name + config round-trips.
    description:
        One-line summary for CLIs and error messages.
    """

    name: str
    factory: Callable[[Any], Basecaller]
    instance_type: type
    config_type: type | None
    capture: Callable[[Any], Any]
    description: str = ""


_BASECALLERS: dict[str, BackendRegistration] = {}

#: Entry-point group third-party distributions use to ship backends.
ENTRY_POINT_GROUP = "repro.basecallers"

_ENTRY_POINTS_LOADED = False

#: Backend name -> entry-point value that registered it, so a forced
#: rescan of an unchanged plugin does not re-warn about "overriding" it
#: while two *different* plugins colliding on one name still warn.
_ENTRY_POINT_NAMES: dict[str, str] = {}


def register_basecaller(registration: BackendRegistration) -> None:
    """Add (or replace) a named basecaller backend."""
    name = registration.name
    if not name or name != name.lower() or not name.replace("-", "_").isidentifier():
        raise ValueError(f"backend name must be a lowercase identifier, got {name!r}")
    _BASECALLERS[name] = registration


def load_entry_point_backends(*, force: bool = False) -> tuple[str, ...]:
    """Discover and register third-party backends from entry points.

    Scans the :data:`ENTRY_POINT_GROUP` group of every installed
    distribution; each entry point must resolve to a
    :class:`BackendRegistration` or a zero-arg callable returning one.
    Runs at most once per process (``force=True`` rescans, e.g. after
    ``sys.path`` changes in tests). A broken plugin is skipped with a
    ``RuntimeWarning`` rather than breaking the registry for everyone.

    Returns the names registered by this call.
    """
    global _ENTRY_POINTS_LOADED
    if _ENTRY_POINTS_LOADED and not force:
        return ()
    loaded: list[str] = []
    try:
        entry_points = importlib.metadata.entry_points(group=ENTRY_POINT_GROUP)
    except Exception as exc:  # pragma: no cover - metadata backend failure
        # Leave the loaded flag unset so a transient metadata failure
        # does not permanently disable discovery for the process.
        warnings.warn(
            f"cannot scan {ENTRY_POINT_GROUP!r} entry points: {exc!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return ()
    _ENTRY_POINTS_LOADED = True
    for entry_point in entry_points:
        try:
            target = entry_point.load()
            registration = target if isinstance(target, BackendRegistration) else target()
            if not isinstance(registration, BackendRegistration):
                raise TypeError(
                    f"entry point must yield a BackendRegistration, "
                    f"got {type(registration).__name__}"
                )
            if (
                registration.name in _BASECALLERS
                and _ENTRY_POINT_NAMES.get(registration.name) != entry_point.value
            ):
                # Explicit register_basecaller() calls replace silently
                # by design; *ambient* discovery overriding an existing
                # backend (built-in, or a *different* plugin that won
                # the name earlier in the scan) changes every subsequent
                # run's engine, so it must be loud. A forced rescan
                # re-registering the same plugin is not an override.
                warnings.warn(
                    f"entry point {entry_point.name!r} overrides the existing "
                    f"basecaller backend {registration.name!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
            register_basecaller(registration)
            _ENTRY_POINT_NAMES[registration.name] = entry_point.value
            loaded.append(registration.name)
        except Exception as exc:
            warnings.warn(
                f"skipping basecaller entry point {entry_point.name!r}: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return tuple(loaded)


def basecaller_names() -> tuple[str, ...]:
    """Registered backend names (built-in + entry-point), sorted."""
    load_entry_point_backends()
    return tuple(sorted(_BASECALLERS))


def basecaller_registration(name: str) -> BackendRegistration:
    """Look up a backend registration with a helpful error."""
    if name not in _BASECALLERS:
        load_entry_point_backends()
    try:
        return _BASECALLERS[name]
    except KeyError:
        available = ", ".join(sorted(_BASECALLERS))
        raise ValueError(
            f"unknown basecaller backend {name!r}; available backends: {available}"
        ) from None


def create_basecaller(name: str, config: Any | None = None) -> Basecaller:
    """Construct a registered backend by name.

    ``config`` must be an instance of the backend's config type (or
    ``None`` for the backend's defaults).
    """
    registration = basecaller_registration(name)
    if (
        config is not None
        and registration.config_type is not None
        and not isinstance(config, registration.config_type)
    ):
        raise TypeError(
            f"backend {name!r} expects a {registration.config_type.__name__} "
            f"config, got {type(config).__name__}"
        )
    return registration.factory(config)


def backend_for_instance(instance: Any) -> BackendRegistration | None:
    """The registration whose exact instance type matches, if any.

    Exact type matching (not ``isinstance``) keeps subclasses with
    extra state from being silently rebuilt as their base backend.
    """
    for registration in _BASECALLERS.values():
        if type(instance) is registration.instance_type:
            return registration
    return None


@dataclass(frozen=True)
class BasecallerRef:
    """A picklable (registry name, construction config) engine handle.

    ``ref.build()`` constructs an engine identical to the one the ref
    was captured from: every built-in backend is deterministic in its
    config, so name + config is a faithful wire format.
    """

    name: str
    config: Any = None

    def build(self) -> Basecaller:
        """Construct the referenced engine."""
        return create_basecaller(self.name, self.config)

    @classmethod
    def capture(cls, basecaller: Any) -> "BasecallerRef | None":
        """The ref for a live engine, or ``None`` if it is unregistered."""
        registration = backend_for_instance(basecaller)
        if registration is None:
            return None
        return cls(name=registration.name, config=registration.capture(basecaller))


# --- Built-in backends ----------------------------------------------------

register_basecaller(
    BackendRegistration(
        name="surrogate",
        factory=lambda config: SurrogateBasecaller(config),
        instance_type=SurrogateBasecaller,
        config_type=SurrogateConfig,
        capture=lambda basecaller: basecaller.config,
        description="ground-truth replay with a calibrated error/quality model (dataset-scale)",
    )
)

register_basecaller(
    BackendRegistration(
        name="viterbi",
        factory=lambda config: ViterbiChunkBasecaller(config),
        instance_type=ViterbiChunkBasecaller,
        config_type=ViterbiBackendConfig,
        capture=lambda basecaller: basecaller.config,
        description="signal-space k-mer HMM Viterbi decoding of synthesized raw signal",
    )
)

register_basecaller(
    BackendRegistration(
        name="dnn",
        factory=lambda config: DNNChunkBasecaller(config),
        instance_type=DNNChunkBasecaller,
        config_type=DNNBackendConfig,
        capture=lambda basecaller: basecaller.config,
        description="Bonito-like CTC network (untrained weights; workload/integration backend)",
    )
)


# --- Pipeline presets -----------------------------------------------------

_PRESETS: dict[str, GenPIPConfig] = {
    "default": GenPIPConfig(),
    "ecoli": ECOLI_PARAMS,
    "human": HUMAN_PARAMS,
    # Dataset-profile spellings, for symmetry with --profile.
    "ecoli-like": ECOLI_PARAMS,
    "human-like": HUMAN_PARAMS,
}


def register_preset(name: str, config: GenPIPConfig) -> None:
    """Add (or replace) a named pipeline preset."""
    if not name:
        raise ValueError("preset name must be non-empty")
    _PRESETS[name] = config


def preset_names() -> tuple[str, ...]:
    """Registered preset names, sorted."""
    return tuple(sorted(_PRESETS))


def preset_config(name: str) -> GenPIPConfig:
    """Look up a preset's :class:`GenPIPConfig` with a helpful error."""
    try:
        return _PRESETS[name]
    except KeyError:
        available = ", ".join(preset_names())
        raise ValueError(
            f"unknown pipeline preset {name!r}; available presets: {available}"
        ) from None
