"""The chunk-based pipeline (CP) with early rejection (ER) interleaved.

Functional model of the paper's Fig. 6 control flow:

1. basecall the ``N_qs`` evenly-sampled chunks, check QSR -> maybe stop;
2. basecall the first ``N_cm`` chunks, merge, seed + chain, check CMR ->
   maybe stop;
3. basecall the remaining chunks (each chunk is seeded as it appears,
   with a (k + w - 2)-base context overlap so that chunked seeding finds
   *exactly* the anchors whole-read seeding finds); final chaining +
   alignment produce the mapping result.

The :class:`ConventionalPipeline` (basecall everything -> read-level QC
-> map) is provided for equivalence testing and as the software baseline
of the evaluation. With ER disabled, the chunk-based pipeline produces
*identical* results to the conventional one -- the paper's "negligible
accuracy loss" claim, which ``tests/test_core_pipeline.py`` checks
exactly.

Timing is *not* modelled here: this module decides what work happens;
:mod:`repro.perf` decides how long that work takes on each system.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.basecalling.chunked import reassemble_chunks
from repro.basecalling.surrogate import SurrogateBasecaller
from repro.basecalling.types import BasecalledChunk, BasecalledRead
from repro.core.backends import (
    Basecaller,
    CMRPolicyProtocol,
    QSRPolicyProtocol,
    SignalRejectionPolicyProtocol,
)
from repro.core.config import GenPIPConfig
from repro.core.early_rejection import CMRDecision, CMRPolicy, QSRDecision, QSRPolicy
from repro.genomics import alphabet
from repro.mapping.index import MinimizerIndex
from repro.mapping.mapper import IncrementalChunkMapper, MapperConfig, MappingResult
from repro.nanopore.read_simulator import SimulatedRead
from repro.nanopore.signal_read import SignalRead
from repro.obs.trace import Tracer, active_tracer, use_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps repro.signal lazy)
    from collections.abc import Iterable

    from repro.signal.rejection import SERDecision

#: Anything the chunk pipeline can process: a base-space simulated read
#: or a signal-native read carrying stored raw current. Both expose
#: ``read_id`` and ``len(read)`` (the shared chunk/shard grid); which
#: kinds a run supports is the basecaller's affair (signal-space
#: engines declare ``accepts_signal_reads = True``).
PipelineRead = SimulatedRead | SignalRead


class ReadStatus(enum.Enum):
    """Terminal state of one read in the pipeline."""

    #: Stopped by signal-domain early rejection (before any basecalling).
    REJECTED_SIGNAL = "rejected_signal"
    #: Stopped by quality-score early rejection (after N_qs chunks).
    REJECTED_QSR = "rejected_qsr"
    #: Stopped by chunk-mapping early rejection (after ~N_qs + N_cm chunks).
    REJECTED_CMR = "rejected_cmr"
    #: Fully basecalled but dropped by read-level quality control.
    FAILED_QC = "failed_qc"
    #: Fully processed but no confident mapping was found.
    UNMAPPED = "unmapped"
    #: Fully processed and mapped.
    MAPPED = "mapped"


@dataclass(frozen=True)
class ReadOutcome:
    """Everything the experiments and the performance model need per read.

    Work counters count *distinct* chunks (a chunk basecalled for QSR is
    not re-basecalled later).
    """

    read_id: str
    status: ReadStatus
    read_length: int
    n_chunks_total: int
    n_chunks_basecalled: int
    n_bases_basecalled: int
    n_chunks_seeded: int
    n_chain_invocations: int
    aligned: bool
    mean_quality: float | None = None
    ser: SERDecision | None = None
    qsr: QSRDecision | None = None
    cmr: CMRDecision | None = None
    mapping: MappingResult | None = None

    @property
    def rejected_early(self) -> bool:
        return self.status in (
            ReadStatus.REJECTED_SIGNAL,
            ReadStatus.REJECTED_QSR,
            ReadStatus.REJECTED_CMR,
        )

    @property
    def basecall_fraction(self) -> float:
        """Fraction of the read's chunks that were actually basecalled."""
        return self.n_chunks_basecalled / max(self.n_chunks_total, 1)


class GenPIPPipeline:
    """Chunk-based pipeline with optional early rejection.

    The engines are injected behind structural protocols
    (:mod:`repro.core.backends`): any chunk-deterministic
    :class:`~repro.core.backends.Basecaller` and any pair of rejection
    policies run the identical control flow. Defaults are the surrogate
    basecaller and the paper's QSR/CMR policies derived from ``config``.
    """

    def __init__(
        self,
        index: MinimizerIndex,
        basecaller: Basecaller | None = None,
        config: GenPIPConfig | None = None,
        mapper_config: MapperConfig | None = None,
        align: bool = True,
        qsr_policy: QSRPolicyProtocol | None = None,
        cmr_policy: CMRPolicyProtocol | None = None,
        ser_policy: SignalRejectionPolicyProtocol | None = None,
        tracer: Tracer | None = None,
    ):
        self._index = index
        self._basecaller: Basecaller = basecaller or SurrogateBasecaller()
        self._config = config or GenPIPConfig()
        self._mapper_config = mapper_config or MapperConfig()
        self._align = align
        self._qsr: QSRPolicyProtocol = qsr_policy or QSRPolicy(
            self._config.theta_qs, self._config.n_qs
        )
        self._cmr: CMRPolicyProtocol = cmr_policy or CMRPolicy(
            self._config.theta_cm, self._config.n_cm
        )
        # SER has no reference-free default: None simply disables the
        # pre-basecalling stage (the PR-4-and-earlier control flow).
        self._ser: SignalRejectionPolicyProtocol | None = ser_policy
        # Span tracer: an explicit instance pins the clock (tests);
        # None defers to the process tracer per read, so enabling
        # tracing after construction (CLI, worker init) still takes.
        self._tracer = tracer
        # Context overlap that makes chunked seeding anchor-identical to
        # whole-read seeding: k-1 for boundary k-mers plus w-1 for
        # boundary windows.
        self._seed_overlap = self._index.config.k + self._index.config.w - 2

    @property
    def config(self) -> GenPIPConfig:
        return self._config

    @property
    def index(self) -> MinimizerIndex:
        return self._index

    @property
    def basecaller(self) -> Basecaller:
        return self._basecaller

    @property
    def mapper_config(self) -> MapperConfig:
        return self._mapper_config

    @property
    def align(self) -> bool:
        return self._align

    @property
    def qsr_policy(self) -> QSRPolicyProtocol:
        return self._qsr

    @property
    def cmr_policy(self) -> CMRPolicyProtocol:
        return self._cmr

    @property
    def ser_policy(self) -> SignalRejectionPolicyProtocol | None:
        return self._ser

    def process_batch(self, reads: "list[PipelineRead]") -> "list[ReadOutcome]":
        """Process a batch of reads in order (one runtime work unit).

        Reads are independent -- the pipeline keeps no cross-read state
        -- so batching exists purely to amortise scheduling and IPC in
        :mod:`repro.runtime`. Backends that batch-decode across reads
        (``prime_chunk_batch``) are handed the batch's first-stage
        chunk set up front; outcomes are unchanged, only the kernel
        grouping differs.
        """
        self._prime_basecalls(reads)
        return [self.process_read(read) for read in reads]

    def _prime_basecalls(self, reads: "list[PipelineRead]") -> int:
        """Offer the batch's first-stage chunks to a batching backend.

        Collects exactly the chunks stage 1 of :meth:`process_read`
        deterministically decodes for each read -- the QSR sample when
        QSR will run, else the CMR merge set, else every chunk -- and
        passes them to the backend's ``prime_chunk_batch`` in one call,
        so a batched engine stacks them into multi-read forward passes.
        Reads SER might reject are skipped (their chunks may never be
        decoded at all). Backends without the hook cost nothing.
        Returns the number of chunks primed.
        """
        prime = getattr(self._basecaller, "prime_chunk_batch", None)
        if prime is None:
            return 0
        cfg = self._config
        chunk_size = cfg.chunk_size
        requests: list[tuple[PipelineRead, int]] = []
        for read in reads:
            n_chunks = self._basecaller.n_chunks(read, chunk_size)
            er_eligible = n_chunks >= cfg.min_chunks_for_er
            if (
                cfg.enable_ser
                and self._ser is not None
                and er_eligible
                and isinstance(read, SignalRead)
            ):
                continue
            if cfg.enable_qsr and er_eligible:
                indices: "Iterable[int]" = self._qsr.sample_indices(n_chunks)
            else:
                indices = (
                    self._cmr.merged_chunk_indices(n_chunks)
                    if cfg.enable_cmr and er_eligible
                    else range(n_chunks)
                )
            requests.extend((read, index) for index in indices)
        if not requests:
            return 0
        return prime(requests, chunk_size)

    def process_read(self, read: PipelineRead) -> ReadOutcome:
        """Run one read through CP (+ ER if enabled).

        Accepts base-space :class:`SimulatedRead`\\ s with any backend,
        and signal-native :class:`SignalRead`\\ s with backends that
        decode provided signal (``accepts_signal_reads``) -- the same
        CP/ER control flow either way.
        """
        if isinstance(read, SignalRead) and not getattr(
            self._basecaller, "accepts_signal_reads", False
        ):
            raise TypeError(
                f"{type(self._basecaller).__name__} cannot decode signal-native "
                "reads; use a signal-space backend ('viterbi', 'dnn') for raw-"
                "current inputs"
            )
        if self._tracer is not None:
            # Scope the injected tracer (pinned clock) process-wide so
            # the mapper's seed/chain/align sites record into it too.
            with use_tracer(self._tracer) as tracer, tracer.read(read.read_id):
                return self._process_read(read, tracer)
        tracer = active_tracer()
        with tracer.read(read.read_id):
            return self._process_read(read, tracer)

    def _process_read(self, read: PipelineRead, tracer) -> ReadOutcome:
        cfg = self._config
        chunk_size = cfg.chunk_size
        n_chunks = self._basecaller.n_chunks(read, chunk_size)
        called: dict[int, BasecalledChunk] = {}

        def basecall(index: int) -> BasecalledChunk:
            if index not in called:
                with tracer.span("basecall_chunk"):
                    called[index] = self._basecaller.basecall_chunk(read, index, chunk_size)
            return called[index]

        er_eligible = n_chunks >= cfg.min_chunks_for_er

        # --- Stage 0: SER on the raw-current prefix, before any chunk
        # is basecalled (the paper's "ideally even before they go
        # through basecalling", Sec. 2.3). Signal-native reads only --
        # base-space reads carry no current to screen.
        ser_decision = None
        if (
            cfg.enable_ser
            and self._ser is not None
            and er_eligible
            and isinstance(read, SignalRead)
        ):
            with tracer.span("ser"):
                ser_decision = self._ser.decide(read)
            if ser_decision.reject:
                return self._outcome(
                    read,
                    ReadStatus.REJECTED_SIGNAL,
                    n_chunks,
                    called,
                    n_chunks_seeded=0,
                    n_chain_invocations=0,
                    aligned=False,
                    ser=ser_decision,
                )

        # --- Stage 1: QSR on N_qs evenly sampled chunks (Fig. 6 (1)-(3)).
        qsr_decision = None
        if cfg.enable_qsr and er_eligible:
            with tracer.span("qsr_probe"):
                sampled = [basecall(i) for i in self._qsr.sample_indices(n_chunks)]
                qsr_decision = self._qsr.decide(sampled)
            if qsr_decision.reject:
                return self._outcome(
                    read,
                    ReadStatus.REJECTED_QSR,
                    n_chunks,
                    called,
                    n_chunks_seeded=0,
                    n_chain_invocations=0,
                    aligned=False,
                    ser=ser_decision,
                    qsr=qsr_decision,
                )

        # --- Stage 2: CMR on the first N_cm chunks merged (Fig. 6 (4)-(6)).
        cmr_decision = None
        n_chain_invocations = 0
        # Provisional read length (the true length) for reverse-strand
        # coordinate flipping during prefix chaining; fixed to the exact
        # basecalled length before finalize().
        chunk_mapper = IncrementalChunkMapper(
            self._index, read_length=len(read), config=self._mapper_config
        )
        seeded: set[int] = set()
        if cfg.enable_cmr and er_eligible:
            with tracer.span("cmr_probe"):
                merged_indices = self._cmr.merged_chunk_indices(n_chunks)
                for i in merged_indices:
                    basecall(i)
                self._reindex_mapper(chunk_mapper, called, merged_indices, seeded)
                primary, _ = chunk_mapper.chain_prefix()
                merged_bases = sum(len(called[i]) for i in merged_indices)
                score = primary.score if primary is not None else 0.0
                n_chain_invocations += 1
                cmr_decision = self._cmr.decide(score, merged_bases)
            if cmr_decision.reject:
                return self._outcome(
                    read,
                    ReadStatus.REJECTED_CMR,
                    n_chunks,
                    called,
                    n_chunks_seeded=len(seeded),
                    n_chain_invocations=n_chain_invocations,
                    aligned=False,
                    ser=ser_decision,
                    qsr=qsr_decision,
                    cmr=cmr_decision,
                )

        # --- Stage 3: basecall + seed the remaining chunks (Fig. 6 (6b)-(7)).
        for i in range(n_chunks):
            basecall(i)
        self._reindex_mapper(chunk_mapper, called, range(n_chunks), seeded)

        full_read = reassemble_chunks(read.read_id, [called[i] for i in range(n_chunks)])

        # Read-level quality control applies when QSR is off (QSR *is*
        # the quality filter when enabled).
        if not cfg.enable_qsr and full_read.mean_quality < cfg.theta_qs:
            return self._outcome(
                read,
                ReadStatus.FAILED_QC,
                n_chunks,
                called,
                n_chunks_seeded=len(seeded),
                n_chain_invocations=n_chain_invocations,
                aligned=False,
                mean_quality=full_read.mean_quality,
                ser=ser_decision,
            )

        read_codes = alphabet.encode(full_read.bases)
        chunk_mapper.set_read_length(read_codes.size)
        mapping = chunk_mapper.finalize(read.read_id, read_codes, align=self._align)
        n_chain_invocations += 1
        status = ReadStatus.MAPPED if mapping.mapped else ReadStatus.UNMAPPED
        with tracer.span("report"):
            return self._outcome(
                read,
                status,
                n_chunks,
                called,
                n_chunks_seeded=len(seeded),
                n_chain_invocations=n_chain_invocations,
                aligned=mapping.alignment is not None,
                mean_quality=full_read.mean_quality,
                ser=ser_decision,
                qsr=qsr_decision,
                cmr=cmr_decision,
                mapping=mapping,
            )

    def basecall_full(self, read: SimulatedRead) -> BasecalledRead:
        """Basecall every chunk of a read (oracle/recovery helper)."""
        return self._basecaller.basecall_read(read, self._config.chunk_size)

    def _reindex_mapper(
        self,
        chunk_mapper: IncrementalChunkMapper,
        called: dict[int, BasecalledChunk],
        indices,
        seeded: set[int],
    ) -> None:
        """Seed not-yet-seeded chunks, in order, with context overlap.

        Chunk boundaries in *called-base* coordinates shift with indel
        errors, so offsets are the cumulative called lengths. Each chunk
        after the first is seeded with the previous chunk's trailing
        ``k + w - 2`` bases prepended, making the union of chunk anchors
        exactly equal to whole-read anchors (deduplicated downstream).
        """
        ordered = sorted(set(indices))
        # Seeding must proceed in order; offsets need all prior chunks.
        offsets: dict[int, int] = {}
        acc = 0
        max_index = max(ordered) if ordered else -1
        for i in range(max_index + 1):
            offsets[i] = acc
            if i in called:
                acc += len(called[i])
        for i in ordered:
            if i in seeded or i not in called:
                continue
            # Contiguity guard: only seed when all earlier chunks are
            # called (offsets would otherwise be wrong). The pipeline
            # always satisfies this for CMR (chunks 0..N_cm-1) and the
            # final pass (all chunks).
            if any(j not in called for j in range(i)):
                continue
            chunk = called[i]
            codes = alphabet.encode(chunk.bases)
            offset = offsets[i]
            if i > 0 and self._seed_overlap > 0:
                prev = alphabet.encode(called[i - 1].bases)
                context = prev[-self._seed_overlap :]
                codes = np.concatenate([context, codes])
                offset -= context.size
            chunk_mapper.add_chunk(codes, read_offset=offset)
            seeded.add(i)

    def _outcome(
        self,
        read: SimulatedRead,
        status: ReadStatus,
        n_chunks: int,
        called: dict[int, BasecalledChunk],
        n_chunks_seeded: int,
        n_chain_invocations: int,
        aligned: bool,
        mean_quality: float | None = None,
        ser: SERDecision | None = None,
        qsr: QSRDecision | None = None,
        cmr: CMRDecision | None = None,
        mapping: MappingResult | None = None,
    ) -> ReadOutcome:
        return ReadOutcome(
            read_id=read.read_id,
            status=status,
            read_length=len(read),
            n_chunks_total=n_chunks,
            n_chunks_basecalled=len(called),
            n_bases_basecalled=sum(c.n_true_bases for c in called.values()),
            n_chunks_seeded=n_chunks_seeded,
            n_chain_invocations=n_chain_invocations,
            aligned=aligned,
            mean_quality=mean_quality,
            ser=ser,
            qsr=qsr,
            cmr=cmr,
            mapping=mapping,
        )


class ConventionalPipeline:
    """The decoupled software pipeline: basecall -> RQC -> map.

    This is what Systems ``CPU`` / ``GPU`` of the evaluation run; it
    produces the same :class:`ReadOutcome` records so the performance
    model and the experiments can treat all pipelines uniformly.
    """

    def __init__(
        self,
        index: MinimizerIndex,
        basecaller: Basecaller | None = None,
        config: GenPIPConfig | None = None,
        mapper_config: MapperConfig | None = None,
        align: bool = True,
    ):
        config = (config or GenPIPConfig()).conventional()
        self._pipeline = GenPIPPipeline(index, basecaller, config, mapper_config, align=align)

    @property
    def config(self) -> GenPIPConfig:
        return self._pipeline.config

    @property
    def pipeline(self) -> GenPIPPipeline:
        return self._pipeline

    def process_read(self, read: SimulatedRead) -> ReadOutcome:
        """Conventional processing == chunk pipeline with ER disabled.

        The chunk-based pipeline with ER off performs exactly the same
        computation as basecall-everything-then-map (identical basecalls
        by chunk determinism; identical anchors by the seeding overlap),
        so the conventional pipeline *is* that configuration -- only the
        performance model treats their timing differently.
        """
        return self._pipeline.process_read(read)
