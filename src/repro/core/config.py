"""GenPIP configuration: chunking and early-rejection parameters."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class GenPIPConfig:
    """Parameters of the GenPIP pipeline.

    Attributes
    ----------
    chunk_size:
        Bases per basecalling chunk. The paper evaluates 300 (the
        basecaller default), 400, and 500.
    enable_qsr, enable_cmr:
        Switch the two early-rejection sub-techniques (the GenPIP-CP /
        GenPIP-CP-QSR / GenPIP system variants of Sec. 5).
    enable_ser:
        Switch signal-domain early rejection (SER), the pre-basecalling
        reject stage over raw current. SER additionally needs a
        :class:`~repro.core.backends.SignalRejectionPolicyProtocol`
        policy injected into the pipeline (there is no reference-free
        default), so with the default construction this flag is inert;
        with a policy present it gates the stage exactly like
        ``enable_qsr``/``enable_cmr`` gate theirs.
    n_qs:
        Number of evenly-spaced chunks sampled by QSR (Sec. 6.3.1:
        2 for E. coli, 5 for human).
    theta_qs:
        Quality-score threshold shared by QSR and read quality control.
    n_cm:
        Number of *consecutive* chunks merged by CMR before its chaining
        check (Sec. 6.3.2: 5 for E. coli, 3 for human).
    theta_cm:
        Chaining-score threshold, normalised per merged-chunk base. The
        paper uses an absolute score against its own chaining kernel;
        per-base normalisation makes one default meaningful across chunk
        sizes. The default sits well below the per-base score of any
        mappable read on the synthetic datasets (junk reads chain at
        ~0.00-0.02/base, mappable reads at >0.07/base), which gives the
        near-zero false-negative ratio the paper selects for (Fig. 13).
    min_chunks_for_er:
        Reads with fewer chunks than this skip early rejection (very
        short reads are cheap anyway and sampling degenerates).
    """

    chunk_size: int = 300
    enable_qsr: bool = True
    enable_cmr: bool = True
    enable_ser: bool = True
    n_qs: int = 2
    theta_qs: float = 7.0
    n_cm: int = 5
    theta_cm: float = 0.04
    min_chunks_for_er: int = 2

    def __post_init__(self) -> None:
        if self.chunk_size < 50:
            raise ValueError("chunk_size must be at least 50 bases")
        if self.n_qs < 1 or self.n_cm < 1:
            raise ValueError("n_qs and n_cm must be positive")
        if self.theta_qs < 0 or self.theta_cm < 0:
            raise ValueError("thresholds must be non-negative")
        if self.min_chunks_for_er < 1:
            raise ValueError("min_chunks_for_er must be positive")

    def with_chunk_size(self, chunk_size: int) -> "GenPIPConfig":
        """This config at a different chunk size (Fig. 10/11 sweeps)."""
        return replace(self, chunk_size=chunk_size)

    def conventional(self) -> "GenPIPConfig":
        """This config with every ER technique disabled (CP-only)."""
        return replace(self, enable_qsr=False, enable_cmr=False, enable_ser=False)


#: Sec. 6.3 sensitivity-chosen parameters for the E. coli dataset.
ECOLI_PARAMS = GenPIPConfig(n_qs=2, n_cm=5)

#: Sec. 6.3 sensitivity-chosen parameters for the human dataset.
HUMAN_PARAMS = GenPIPConfig(n_qs=5, n_cm=3)

#: ER variants of the evaluation (Sec. 5 system variants).
VARIANTS = ("conventional", "qsr_only", "full_er")


def variant_config(config: GenPIPConfig, variant: str) -> GenPIPConfig:
    """Apply an evaluation variant's ER switches to a base config."""
    if variant == "conventional":
        return config.conventional()
    if variant == "qsr_only":
        return replace(config, enable_cmr=False)
    if variant == "full_er":
        return config
    raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
