"""Early rejection (ER): QSR and CMR policies (paper Sec. 3.2).

ER predicts, from a handful of basecalled chunks, whether a read will be
useless downstream -- either low-quality (QSR) or unmappable (CMR) --
and stops the pipeline for such reads before the remaining (tens to
hundreds of) chunks are basecalled.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.basecalling.types import BasecalledChunk


def qsr_sample_indices(n_chunks: int, n_qs: int) -> list[int]:
    """Indices of the ``n_qs`` chunks QSR samples (paper Algorithm 1).

    Algorithm 1 samples chunks "evenly distributed in a read"; the
    printed index formula (``floor(i / (N_qs - 1)) * floor(N / C)``)
    collapses to the first and last chunk only, so -- following the
    stated intent and Fig. 7's non-consecutive-sampling rationale -- we
    spread the samples uniformly across ``[0, n_chunks - 1]``, first and
    last chunk included.
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be positive")
    if n_qs < 1:
        raise ValueError("n_qs must be positive")
    if n_qs == 1 or n_chunks == 1:
        return [0]
    raw = np.round(np.linspace(0, n_chunks - 1, min(n_qs, n_chunks))).astype(int)
    return sorted(set(int(i) for i in raw))


@dataclass(frozen=True)
class QSRDecision:
    """Outcome of a quality-score rejection check."""

    reject: bool
    average_quality: float
    sampled_indices: tuple[int, ...]


class QSRPolicy:
    """Quality-Score-based Rejection (paper Sec. 3.2.1, Algorithm 1).

    Averages the chunk quality scores of ``n_qs`` evenly-spaced chunks
    and rejects the read when that average falls below ``theta_qs``.
    """

    def __init__(self, theta_qs: float = 7.0, n_qs: int = 2):
        if theta_qs < 0:
            raise ValueError("theta_qs must be non-negative")
        if n_qs < 1:
            raise ValueError("n_qs must be positive")
        self.theta_qs = theta_qs
        self.n_qs = n_qs

    def sample_indices(self, n_chunks: int) -> list[int]:
        return qsr_sample_indices(n_chunks, self.n_qs)

    def decide(self, sampled_chunks: list[BasecalledChunk]) -> QSRDecision:
        """Apply the threshold to the sampled chunks' mean quality.

        The average is computed base-weighted (total SQS over total
        bases), matching what the PIM-CQS unit + AQS calculator compute
        in hardware: chunk SQS sums divided by the base count.
        """
        if not sampled_chunks:
            raise ValueError("QSR needs at least one sampled chunk")
        total_quality = sum(c.sum_quality for c in sampled_chunks)
        total_bases = sum(len(c) for c in sampled_chunks)
        average = total_quality / total_bases if total_bases else 0.0
        return QSRDecision(
            reject=average < self.theta_qs,
            average_quality=average,
            sampled_indices=tuple(c.chunk_index for c in sampled_chunks),
        )


@dataclass(frozen=True)
class CMRDecision:
    """Outcome of a chunk-mapping rejection check."""

    reject: bool
    chain_score: float
    merged_bases: int
    threshold: float


class CMRPolicy:
    """Chunk-Mapping-based Rejection (paper Sec. 3.2.2).

    Merges the first ``n_cm`` consecutive chunks into one large chunk,
    chains it against the reference, and rejects the read when the
    chaining score falls below the threshold. Individual ~300-base
    chunks produce too many spurious candidate loci (the paper's
    motivation for merging); ~1500 merged bases chain decisively.

    The threshold is ``theta_cm`` *per merged base* so that one value is
    meaningful across chunk sizes and ``n_cm`` values.
    """

    def __init__(self, theta_cm: float = 0.15, n_cm: int = 5):
        if theta_cm < 0:
            raise ValueError("theta_cm must be non-negative")
        if n_cm < 1:
            raise ValueError("n_cm must be positive")
        self.theta_cm = theta_cm
        self.n_cm = n_cm

    def merged_chunk_indices(self, n_chunks: int) -> list[int]:
        """The first ``n_cm`` chunks (continuous, per the paper)."""
        return list(range(min(self.n_cm, n_chunks)))

    def decide(self, chain_score: float, merged_bases: int) -> CMRDecision:
        """Apply the per-base chaining-score threshold."""
        if merged_bases < 0:
            raise ValueError("merged_bases must be non-negative")
        threshold = self.theta_cm * merged_bases
        return CMRDecision(
            reject=chain_score < threshold,
            chain_score=chain_score,
            merged_bases=merged_bases,
            threshold=threshold,
        )
