"""The GenPIP controller's structural model (paper Sec. 4.2, Fig. 8c).

The controller owns the staging state of the architecture: the **read
queue** (raw signals from the sequencer, sized for the longest signal,
~6 MB), the **chunk buffer** (basecalled chunks held until alignment or
early rejection, sized for the longest read at 2.3 M bases), the **AQS
calculator** (a running sum of chunk quality scores), and the
**ER-QSR / ER-CMR controllers** (threshold comparators that fire the
termination signals).

:class:`ControllerTrace` replays a pipeline run through this structural
model and records what the hardware would have to sustain: peak buffer
occupancies, ER signal counts, and overflow checks against the paper's
provisioned capacities. It is an accounting layer -- the functional
decisions stay in :mod:`repro.core.pipeline` -- but it verifies that
the paper's buffer sizes actually cover the simulated workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pipeline import ReadOutcome, ReadStatus
from repro.hardware.edram import EDramBuffer, chunk_buffer, read_queue_buffer

#: Raw-signal bytes per base held in the read queue (dwell ~6 samples
#: of 2-byte current values).
SIGNAL_BYTES_PER_BASE = 12.0

#: Basecalled bytes per base in the chunk buffer (base + quality).
CALLED_BYTES_PER_BASE = 2.0


@dataclass(frozen=True)
class AQSCalculator:
    """The running average-quality-score accumulator (Fig. 8c).

    Hardware keeps one (sum, count) pair per in-flight read; merging a
    chunk is one addition (the paper's Eq. 3 computation).
    """

    sum_quality: float = 0.0
    n_bases: int = 0

    def merged(self, chunk_sum: float, chunk_bases: int) -> "AQSCalculator":
        """Fold one chunk's SQS into the running state."""
        if chunk_bases < 0:
            raise ValueError("chunk_bases must be non-negative")
        return AQSCalculator(
            sum_quality=self.sum_quality + chunk_sum,
            n_bases=self.n_bases + chunk_bases,
        )

    @property
    def average(self) -> float:
        """The AQS over everything merged so far."""
        if self.n_bases == 0:
            return 0.0
        return self.sum_quality / self.n_bases


@dataclass
class ControllerTrace:
    """Structural replay of a pipeline run through the controller.

    Attributes
    ----------
    read_queue, chunk_buffer:
        The provisioned staging buffers (paper defaults unless
        overridden).
    """

    read_queue: EDramBuffer = field(default_factory=read_queue_buffer)
    chunk_buffer: EDramBuffer = field(default_factory=chunk_buffer)

    n_reads: int = 0
    n_qsr_signals: int = 0
    n_cmr_signals: int = 0
    peak_read_queue_bytes: int = 0
    peak_chunk_buffer_bytes: int = 0
    read_queue_overflows: int = 0
    chunk_buffer_overflows: int = 0

    def observe_read(self, outcome: ReadOutcome) -> None:
        """Account one read's staging demands and ER signals."""
        self.n_reads += 1
        signal_bytes = int(outcome.read_length * SIGNAL_BYTES_PER_BASE)
        self.peak_read_queue_bytes = max(self.peak_read_queue_bytes, signal_bytes)
        if not self.read_queue.fits(signal_bytes):
            self.read_queue_overflows += 1

        # The chunk buffer holds the basecalled chunks of the in-flight
        # read until alignment completes or ER terminates it.
        called_bytes = int(outcome.n_bases_basecalled * CALLED_BYTES_PER_BASE)
        self.peak_chunk_buffer_bytes = max(self.peak_chunk_buffer_bytes, called_bytes)
        if not self.chunk_buffer.fits(called_bytes):
            self.chunk_buffer_overflows += 1

        if outcome.status is ReadStatus.REJECTED_QSR:
            self.n_qsr_signals += 1
        elif outcome.status is ReadStatus.REJECTED_CMR:
            self.n_cmr_signals += 1

    def observe_run(self, outcomes) -> "ControllerTrace":
        """Account a whole run; returns self for chaining."""
        for outcome in outcomes:
            self.observe_read(outcome)
        return self

    @property
    def peak_read_queue_utilisation(self) -> float:
        """Peak fraction of the read queue used by any one signal."""
        return self.peak_read_queue_bytes / self.read_queue.size_bytes

    @property
    def peak_chunk_buffer_utilisation(self) -> float:
        return self.peak_chunk_buffer_bytes / self.chunk_buffer.size_bytes

    @property
    def er_signal_ratio(self) -> float:
        """Fraction of reads terminated by an ER signal."""
        if self.n_reads == 0:
            return 0.0
        return (self.n_qsr_signals + self.n_cmr_signals) / self.n_reads

    def summary(self) -> dict[str, float]:
        """Flat summary for reports and tests."""
        return {
            "reads": float(self.n_reads),
            "qsr_signals": float(self.n_qsr_signals),
            "cmr_signals": float(self.n_cmr_signals),
            "peak_read_queue_utilisation": self.peak_read_queue_utilisation,
            "peak_chunk_buffer_utilisation": self.peak_chunk_buffer_utilisation,
            "read_queue_overflows": float(self.read_queue_overflows),
            "chunk_buffer_overflows": float(self.chunk_buffer_overflows),
        }
