"""Structural protocols for the pluggable engine API.

GenPIP's central claim is that the chunk pipeline (CP) and early
rejection (ER) are independent of the basecaller implementation: the
paper pairs the same control flow with a Bonito-class DNN running on PIM
hardware. This module states that independence as code: the pipeline is
typed against *protocols* -- the chunk-basecaller contract and the two
rejection-policy contracts -- not against any concrete engine.

Any object satisfying :class:`Basecaller` can drive
:class:`~repro.core.pipeline.GenPIPPipeline`; the repo ships three:

* ``"surrogate"`` -- ground-truth replay with a calibrated error model
  (:class:`~repro.basecalling.surrogate.SurrogateBasecaller`), the
  dataset-scale engine;
* ``"viterbi"`` -- real signal-space k-mer HMM decoding
  (:class:`~repro.basecalling.engines.ViterbiChunkBasecaller`);
* ``"dnn"`` -- the Bonito-like CTC network
  (:class:`~repro.basecalling.engines.DNNChunkBasecaller`).

The protocols are ``runtime_checkable`` so registries and tests can
verify conformance with ``isinstance``; being structural, third-party
engines need no imports from this repo beyond the data types.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.basecalling.types import BasecalledChunk, BasecalledRead

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.early_rejection import CMRDecision, QSRDecision
    from repro.nanopore.read_simulator import SimulatedRead
    from repro.nanopore.signal_read import SignalRead
    from repro.signal.rejection import SERDecision


@runtime_checkable
class Basecaller(Protocol):
    """The chunk-level basecaller contract the CP pipeline consumes.

    Implementations must be *chunk-deterministic*: ``basecall_chunk``
    may depend only on ``(read, index, chunk_size)``, never on which
    other chunks were requested before it. The chunk-based pipeline,
    the conventional pipeline, and every early-rejection policy must
    see byte-identical basecalls for the chunks they do process -- the
    software analogue of the paper's "no accuracy loss" claim, and the
    invariant behind the parallel runtime's report equivalence.

    For the runtime to ship an engine to worker processes it must also
    be picklable (or registered in :mod:`repro.core.registry`, which
    lets a name + config travel instead of the instance).

    Engines that can decode *signal-native* inputs -- reads that carry
    stored raw current (:class:`~repro.nanopore.signal_read.SignalRead`)
    instead of base-space ground truth -- declare it with a truthy
    ``accepts_signal_reads`` attribute (a plain class attribute; absent
    means base-space only). The pipeline and runtime check it before
    feeding a signal source to an engine.
    """

    def n_chunks(self, read: "SimulatedRead", chunk_size: int) -> int:
        """Number of chunks the read splits into at this chunk size."""
        ...

    def basecall_chunk(
        self, read: "SimulatedRead", index: int, chunk_size: int
    ) -> BasecalledChunk:
        """Basecall one chunk; deterministic in (read, index, chunk_size)."""
        ...

    def basecall_read(self, read: "SimulatedRead", chunk_size: int) -> BasecalledRead:
        """Basecall every chunk of the read and reassemble."""
        ...


@runtime_checkable
class QSRPolicyProtocol(Protocol):
    """Quality-score early-rejection contract (paper Sec. 3.2.1).

    Decides, from a few sampled basecalled chunks, whether a read is
    too low-quality to finish. The default implementation is
    :class:`~repro.core.early_rejection.QSRPolicy`.
    """

    def sample_indices(self, n_chunks: int) -> list[int]:
        """Chunk indices to basecall for the quality check."""
        ...

    def decide(self, sampled_chunks: list[BasecalledChunk]) -> "QSRDecision":
        """Accept/reject from the sampled chunks' quality scores."""
        ...


@runtime_checkable
class CMRPolicyProtocol(Protocol):
    """Chunk-mapping early-rejection contract (paper Sec. 3.2.2).

    Decides, from the chaining score of a merged chunk prefix, whether
    a read is unmappable. The default implementation is
    :class:`~repro.core.early_rejection.CMRPolicy`.
    """

    def merged_chunk_indices(self, n_chunks: int) -> list[int]:
        """Chunk indices merged before the chaining check."""
        ...

    def decide(self, chain_score: float, merged_bases: int) -> "CMRDecision":
        """Accept/reject from the merged prefix's chaining score."""
        ...


@runtime_checkable
class SignalRejectionPolicyProtocol(Protocol):
    """Signal-domain early-rejection contract (SER; paper Sec. 2.3's
    "ideally even before they go through basecalling").

    Decides, from a signal-native read's *raw current* alone, whether
    the read is junk -- before the pipeline basecalls a single chunk.
    Runs only for :class:`~repro.nanopore.signal_read.SignalRead`
    inputs (base-space reads carry no current to screen). The default
    implementation is
    :class:`~repro.signal.rejection.SignalRejectionPolicy`, which
    matches the signal prefix against reference templates by
    subsequence DTW.

    Policies travel to pooled workers inside the
    :class:`~repro.runtime.spec.PipelineSpec`, so -- like basecallers
    -- they must be picklable and deterministic per read.
    """

    def decide(self, read: "SignalRead") -> "SERDecision":
        """Accept/reject from the read's raw-current prefix."""
        ...
