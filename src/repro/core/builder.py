"""Fluent construction of GenPIP systems: ``GenPIP.build()...``.

One chain assembles everything a run needs -- reference index, pipeline
preset, basecaller backend (by registry name or instance), ER variant,
mapper configuration, rejection policies -- and defers all construction
to :meth:`PipelineBuilder.build`, so a chain is cheap to create, pass
around, and amend::

    system = (
        GenPIP.build()
        .index(index)
        .preset("ecoli")
        .basecaller("viterbi")
        .align(False)
        .build()
    )
    report = system.run(dataset, workers=4)

Equivalence guarantee: the default chain
(``GenPIP.build().index(ix).build()``) constructs through exactly the
same code path as ``GenPIP(ix)``, so its reports are byte-identical to
the direct constructor's -- asserted by ``tests/test_backends.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.backends import (
    Basecaller,
    CMRPolicyProtocol,
    QSRPolicyProtocol,
    SignalRejectionPolicyProtocol,
)
from repro.core.config import GenPIPConfig, variant_config
from repro.core.registry import create_basecaller, preset_config
from repro.mapping.index import MinimizerIndex
from repro.mapping.mapper import MapperConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.genpip import GenPIP
    from repro.core.pipeline import GenPIPPipeline
    from repro.nanopore.datasets import Dataset


class PipelineBuilder:
    """Accumulates construction choices; ``build()`` materialises them.

    Every setter returns ``self``, so calls chain. Later calls override
    earlier ones (``.config(...)`` and ``.preset(...)`` set the same
    underlying base config; the last call wins). Nothing expensive
    happens until :meth:`build` / :meth:`build_pipeline`.
    """

    def __init__(self) -> None:
        self._index: MinimizerIndex | None = None
        self._dataset: "Dataset | None" = None
        self._base_config: GenPIPConfig | None = None
        self._chunk_size: int | None = None
        self._variant: str | None = None
        self._basecaller_name: str | None = None
        self._basecaller_config: object | None = None
        self._basecaller_instance: Basecaller | None = None
        self._mapper_config: MapperConfig | None = None
        self._align: bool = True
        self._qsr_policy: QSRPolicyProtocol | None = None
        self._cmr_policy: CMRPolicyProtocol | None = None
        self._ser_policy: SignalRejectionPolicyProtocol | None = None

    # --- data sources -----------------------------------------------------

    def index(self, index: MinimizerIndex) -> "PipelineBuilder":
        """Use a prebuilt reference minimizer index."""
        self._index = index
        self._dataset = None
        return self

    def for_dataset(self, dataset: "Dataset") -> "PipelineBuilder":
        """Derive the index from a dataset's reference at build time."""
        self._dataset = dataset
        self._index = None
        return self

    # --- pipeline configuration -------------------------------------------

    def config(self, config: GenPIPConfig) -> "PipelineBuilder":
        """Use an explicit base :class:`GenPIPConfig`."""
        self._base_config = config
        return self

    def preset(self, name: str) -> "PipelineBuilder":
        """Use a registered preset (``"ecoli"``, ``"human"``, ...)."""
        self._base_config = preset_config(name)
        return self

    def chunk_size(self, chunk_size: int) -> "PipelineBuilder":
        """Override the base config's chunk size."""
        self._chunk_size = chunk_size
        return self

    def variant(self, variant: str) -> "PipelineBuilder":
        """Apply an ER variant (``"conventional"``, ``"qsr_only"``, ``"full_er"``)."""
        self._variant = variant
        return self

    # --- engines ----------------------------------------------------------

    def basecaller(
        self, backend: str | Basecaller, config: object | None = None
    ) -> "PipelineBuilder":
        """Choose the basecaller: a registry name or a live engine.

        With a name, ``config`` is the backend's construction config
        (``None`` for defaults) and the engine is built lazily at
        :meth:`build` time. With an instance, ``config`` must be
        omitted.

        For signal-native runs (a
        :class:`~repro.runtime.source.SignalStoreSource` feeding stored
        raw current) pick a signal-space backend -- ``"viterbi"`` or
        ``"dnn"`` -- since the surrogate replays base-space ground
        truth and cannot decode provided signal.
        """
        if isinstance(backend, str):
            self._basecaller_name = backend
            self._basecaller_config = config
            self._basecaller_instance = None
        else:
            if config is not None:
                raise ValueError(
                    "config applies only when the basecaller is given by registry name"
                )
            self._basecaller_instance = backend
            self._basecaller_name = None
            self._basecaller_config = None
        return self

    def mapper(self, mapper_config: MapperConfig) -> "PipelineBuilder":
        """Override the mapper configuration."""
        self._mapper_config = mapper_config
        return self

    def align(self, enabled: bool = True) -> "PipelineBuilder":
        """Switch base-level alignment (off for the sweep experiments)."""
        self._align = enabled
        return self

    def qsr_policy(self, policy: QSRPolicyProtocol) -> "PipelineBuilder":
        """Inject a custom quality-score rejection policy."""
        self._qsr_policy = policy
        return self

    def cmr_policy(self, policy: CMRPolicyProtocol) -> "PipelineBuilder":
        """Inject a custom chunk-mapping rejection policy."""
        self._cmr_policy = policy
        return self

    def signal_rejection(
        self, policy: SignalRejectionPolicyProtocol | None
    ) -> "PipelineBuilder":
        """Add the signal-domain early-rejection (SER) stage.

        The policy screens signal-native reads' raw current *before any
        basecalling* (e.g.
        :class:`~repro.signal.rejection.SignalRejectionPolicy` built
        from the backend's pore model and the reference). ``None``
        removes a previously set policy. The stage only fires for
        :class:`~repro.nanopore.signal_read.SignalRead` inputs and only
        while the resolved config's ``enable_ser`` is on.
        """
        self._ser_policy = policy
        return self

    # --- materialisation --------------------------------------------------

    def resolved_config(self) -> GenPIPConfig:
        """The effective config: base, then chunk size, then variant."""
        config = self._base_config or GenPIPConfig()
        if self._chunk_size is not None:
            config = config.with_chunk_size(self._chunk_size)
        if self._variant is not None:
            config = variant_config(config, self._variant)
        return config

    def resolved_basecaller(self) -> Basecaller | None:
        """The engine instance, constructing by registry name if needed.

        ``None`` means "pipeline default" (the surrogate), which keeps
        the default chain on the exact constructor path.
        """
        if self._basecaller_instance is not None:
            return self._basecaller_instance
        if self._basecaller_name is not None:
            return create_basecaller(self._basecaller_name, self._basecaller_config)
        return None

    def _resolved_index(self) -> MinimizerIndex:
        if self._index is not None:
            return self._index
        if self._dataset is not None:
            self._index = MinimizerIndex.build(self._dataset.reference)
            return self._index
        raise ValueError(
            "builder needs a reference index: call .index(prebuilt_index) "
            "or .for_dataset(dataset) before .build()"
        )

    def build(self) -> "GenPIP":
        """Construct the :class:`~repro.core.genpip.GenPIP` system."""
        from repro.core.genpip import GenPIP

        return GenPIP(
            self._resolved_index(),
            self.resolved_config(),
            basecaller=self.resolved_basecaller(),
            mapper_config=self._mapper_config,
            align=self._align,
            qsr_policy=self._qsr_policy,
            cmr_policy=self._cmr_policy,
            ser_policy=self._ser_policy,
        )

    def build_pipeline(self) -> "GenPIPPipeline":
        """Construct just the :class:`~repro.core.pipeline.GenPIPPipeline`."""
        return self.build().pipeline
