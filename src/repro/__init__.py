"""GenPIP reproduction: in-memory acceleration of genome analysis.

A full Python reproduction of *GenPIP: In-Memory Acceleration of Genome
Analysis via Tight Integration of Basecalling and Read Mapping* (Mao et
al., MICRO 2022). See README.md for the tour, DESIGN.md for the system
inventory, and EXPERIMENTS.md for measured-vs-paper results.

Top-level entry points:

>>> from repro.core import GenPIP, GenPIPConfig
>>> from repro.mapping import MinimizerIndex
>>> from repro.nanopore import ECOLI_LIKE, generate_dataset
>>> dataset = generate_dataset(ECOLI_LIKE, scale=0.001, seed=0)
>>> index = MinimizerIndex.build(dataset.reference)
>>> report = GenPIP(index, GenPIPConfig()).run(dataset)

Dataset-scale runs shard reads across worker processes (identical
report for any worker count; see :mod:`repro.runtime`):

>>> report = GenPIP(index, GenPIPConfig()).run(dataset, workers=4)

Engines are pluggable behind structural protocols: build a system
fluently from the backend/preset registry (see :mod:`repro.core`):

>>> system = GenPIP.build().index(index).basecaller("viterbi").preset("ecoli").build()
"""

__all__ = [
    "Basecaller",
    "QSRPolicyProtocol",
    "CMRPolicyProtocol",
    "SignalRejectionPolicyProtocol",
    "__version__",
]

__version__ = "1.5.0"

#: Protocol names re-exported lazily (PEP 562) so that ``import repro``
#: stays a version-string-only import; the full engine stack loads on
#: first attribute access.
_PROTOCOL_EXPORTS = frozenset(
    {"Basecaller", "QSRPolicyProtocol", "CMRPolicyProtocol", "SignalRejectionPolicyProtocol"}
)


def __getattr__(name: str):
    if name in _PROTOCOL_EXPORTS:
        from repro.core import backends

        return getattr(backends, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
